//! The full cross-GPU study: evaluates every (device, workload) pair and
//! assembles the series behind the paper's three figures.

use crate::ace::{AceAnalyzer, AceMode, LifetimeOracle};
use crate::campaign::{
    run_campaign_with_oracle_hooked, CampaignConfig, CheckpointLadder, Tally, PHASE_GOLDEN,
};
use crate::epf::{eit, epf, FitBreakdown};
use crate::sampling::{run_adaptive_with_context, SamplingPlan};
use crate::stats::pearson;
use gpu_workloads::Workload;
use grel_telemetry::{Event, NoopHook, SpanRecord, TelemetryHook};
use serde::{Deserialize, Serialize};
use simt_sim::{ArchConfig, FaultModelKind, SimError, Structure};
use std::time::Instant;

/// Per-structure measurements of one (device, workload) pair.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StructureEval {
    /// Fault-injection AVF (`(SDC+DUE)/n`).
    pub avf_fi: f64,
    /// SDC-only component of the FI AVF.
    pub avf_sdc: f64,
    /// ACE-analysis AVF.
    pub avf_ace: f64,
    /// Time-weighted occupancy.
    pub occupancy: f64,
    /// 99 % error margin of `avf_fi`.
    pub margin_99: f64,
    /// Raw outcome counters.
    pub tally: Tally,
}

/// One point of the study: one workload on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Device marketing name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Whether the workload uses local memory (Fig. 2 membership).
    pub uses_local_memory: bool,
    /// Fault-free application cycles.
    pub cycles: u64,
    /// Vector register file measurements.
    pub rf: StructureEval,
    /// Local memory measurements (FI only for Fig. 2 workloads; ACE and
    /// occupancy always).
    pub lds: StructureEval,
    /// Scalar register file ACE AVF (devices with a scalar unit).
    pub srf_avf_ace: Option<f64>,
    /// FIT contributions derived from the measured AVFs.
    pub fit: FitBreakdown,
    /// Executions in 10⁹ hours.
    pub eit: f64,
    /// Executions per failure.
    pub epf: f64,
}

/// Study-wide parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Fault-injection campaign parameters.
    pub campaign: CampaignConfig,
    /// Seed for workload input generation.
    pub workload_seed: u64,
    /// Whether to run FI on local memory for workloads that never touch
    /// it (the paper does not; the result is ~0 by construction).
    pub fi_on_unused_lds: bool,
    /// Whether to run campaigns with the fault-propagation flight
    /// recorder on (per-injection `injection.trace` events and
    /// `provenance_*` attribution metrics). Off by default; tallies and
    /// study results are identical either way.
    #[serde(default)]
    pub provenance: bool,
    /// ACE refinement level (the paper's figures correspond to the
    /// conservative default).
    #[serde(skip)]
    pub ace_mode: AceMode,
    /// Adaptive stratified sampling plan. Disabled by default
    /// (`target_margin == 0`), in which case campaigns run the classic
    /// fixed-`injections` uniform path byte-for-byte. When enabled, each
    /// FI campaign stops at the plan's target margin instead of
    /// `campaign.injections`. Ignored when `provenance` is on (the
    /// flight recorder traces a fixed uniform sample).
    #[serde(skip)]
    pub sampling: SamplingPlan,
}

impl StudyConfig {
    /// Paper-scale configuration (2,000 injections per structure).
    pub fn paper(seed: u64) -> Self {
        StudyConfig {
            campaign: CampaignConfig::paper(seed),
            workload_seed: seed,
            fi_on_unused_lds: false,
            provenance: false,
            ace_mode: AceMode::default(),
            sampling: SamplingPlan::default(),
        }
    }

    /// Quick-look configuration (200 injections per structure).
    pub fn quick(seed: u64) -> Self {
        StudyConfig {
            campaign: CampaignConfig::quick(seed),
            workload_seed: seed,
            fi_on_unused_lds: false,
            provenance: false,
            ace_mode: AceMode::default(),
            sampling: SamplingPlan::default(),
        }
    }
}

/// The FI measurements [`structure_eval`] consumes, shared between the
/// uniform campaign result and the adaptive engine's.
struct FiMeasure {
    avf: f64,
    avf_sdc: f64,
    margin: f64,
    tally: Tally,
}

impl From<&crate::campaign::CampaignResult> for FiMeasure {
    fn from(r: &crate::campaign::CampaignResult) -> Self {
        FiMeasure {
            avf: r.avf(),
            avf_sdc: r.avf_sdc(),
            margin: r.margin_99,
            tally: r.tally,
        }
    }
}

impl From<&crate::sampling::AdaptiveCampaign> for FiMeasure {
    fn from(r: &crate::sampling::AdaptiveCampaign) -> Self {
        FiMeasure {
            avf: r.avf,
            avf_sdc: r.avf_sdc,
            margin: r.margin,
            tally: r.tally,
        }
    }
}

fn structure_eval(fi: Option<&FiMeasure>, ace: &AceAnalyzer, s: Structure) -> StructureEval {
    let rep = ace.report(s);
    match fi {
        Some(r) => StructureEval {
            avf_fi: r.avf,
            avf_sdc: r.avf_sdc,
            avf_ace: rep.avf_ace,
            occupancy: rep.occupancy,
            margin_99: r.margin,
            tally: r.tally,
        },
        None => StructureEval {
            avf_fi: 0.0,
            avf_sdc: 0.0,
            avf_ace: rep.avf_ace,
            occupancy: rep.occupancy,
            margin_99: 0.0,
            tally: Tally::default(),
        },
    }
}

/// Evaluates one workload on one device: golden run with ACE analysis,
/// then fault-injection campaigns on the register file and (when used)
/// the local memory, then the FIT/EIT/EPF roll-up.
///
/// # Errors
///
/// Propagates a fault-free launch failure (device/workload mismatch).
pub fn evaluate_point(
    arch: &ArchConfig,
    workload: &dyn Workload,
    cfg: &StudyConfig,
) -> Result<EvalPoint, SimError> {
    evaluate_point_hooked(arch, workload, cfg, &NoopHook)
}

/// [`evaluate_point`] with full telemetry through `hook`: golden/ACE
/// wall time, per-campaign metrics and a `study.point` event closing the
/// point with its total duration.
///
/// # Errors
///
/// Same as [`evaluate_point`].
pub fn evaluate_point_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    cfg: &StudyConfig,
    hook: &H,
) -> Result<EvalPoint, SimError> {
    let started = H::ENABLED.then(Instant::now);
    let golden_started = H::ENABLED.then(Instant::now);
    let mut gpu = simt_sim::Gpu::new(arch.clone());
    let mut ace = AceAnalyzer::with_mode(arch, cfg.ace_mode);
    // With pruning on, the lifetime oracle rides along on the same golden
    // run — one instrumented pass serves the ACE report and every
    // structure's campaign pruning for this point. Lifetime pruning is
    // only sound for transient flips (a stuck-at fault survives the
    // overwrite the oracle reasons about), so other models skip the
    // capture entirely.
    // The adaptive engine also wants the oracle with pruning off — its
    // liveness stratum is defined by the oracle regardless of whether
    // dead sites are replayed — so the capture gate widens accordingly.
    let adaptive = cfg.sampling.enabled() && !cfg.provenance;
    let mut oracle = ((cfg.campaign.prune || adaptive)
        && cfg.campaign.fault_model == FaultModelKind::Transient)
        .then(|| LifetimeOracle::new(arch));
    let outputs = match oracle.as_mut() {
        Some(oracle) => workload.run(&mut gpu, &mut (&mut ace, &mut *oracle))?,
        None => workload.run(&mut gpu, &mut ace)?,
    };
    let oracle = oracle;
    let golden = crate::campaign::GoldenRun {
        outputs,
        cycles: gpu.app_cycle(),
    };
    if let Some(golden_started) = golden_started {
        let seconds = golden_started.elapsed().as_secs_f64();
        hook.observe("campaign_golden_seconds", seconds);
        hook.gauge("campaign_golden_cycles", golden.cycles as f64);
        hook.event(
            &Event::new("golden.done")
                .field("workload", workload.name())
                .field("device", arch.name.as_str())
                .field("cycles", golden.cycles)
                .field("seconds", seconds),
        );
        if H::SPANS {
            // The study's golden run carries the ACE analysis (and the
            // lifetime oracle, when pruning) on the same pass, so this
            // one span covers golden + oracle capture.
            hook.span(
                &SpanRecord::new(
                    format!("point:{}@{}/golden", workload.name(), arch.name),
                    0,
                    PHASE_GOLDEN,
                    golden_started,
                )
                .tag("cycles", golden.cycles)
                .tag("ace", true),
            );
        }
    }
    // One ladder serves every structure's campaign over this golden run.
    let ladder = CheckpointLadder::build_hooked(arch, workload, &golden, &cfg.campaign, hook)?;
    // With the flight recorder on, campaigns also need the golden run's
    // global-store stream as the divergence reference (captured once and
    // shared by every structure's campaign). Tallies are identical on
    // both paths — the recorder only observes.
    let golden_writes = cfg
        .provenance
        .then(|| crate::provenance::golden_write_log(arch, workload))
        .transpose()?;
    let run_structure = |structure: Structure| -> Result<FiMeasure, SimError> {
        if let Some(writes) = &golden_writes {
            return crate::provenance::run_campaign_with_provenance_hooked(
                arch,
                workload,
                structure,
                cfg.campaign,
                &golden,
                writes,
                &ladder,
                hook,
            )
            .map(|(result, _, _)| FiMeasure::from(&result));
        }
        if adaptive {
            return run_adaptive_with_context(
                arch,
                workload,
                structure,
                cfg.campaign,
                cfg.sampling,
                &golden,
                &ladder,
                oracle.as_ref(),
                hook,
            )
            .map(|r| FiMeasure::from(&r));
        }
        // With pruning off the captured oracle (if any) serves only the
        // adaptive path; the uniform campaign replays every site.
        let replay_oracle = cfg.campaign.prune.then_some(()).and(oracle.as_ref());
        run_campaign_with_oracle_hooked(
            arch,
            workload,
            structure,
            cfg.campaign,
            &golden,
            &ladder,
            replay_oracle,
            hook,
        )
        .map(|r| FiMeasure::from(&r))
    };
    let rf_fi = run_structure(Structure::VectorRegisterFile)?;
    let lds_fi = (workload.uses_local_memory() || cfg.fi_on_unused_lds)
        .then(|| run_structure(Structure::LocalMemory))
        .transpose()?;
    let rf = structure_eval(Some(&rf_fi), &ace, Structure::VectorRegisterFile);
    let lds = structure_eval(lds_fi.as_ref(), &ace, Structure::LocalMemory);
    let srf_avf_ace =
        (arch.srf_words_per_sm() > 0).then(|| ace.report(Structure::ScalarRegisterFile).avf_ace);
    // FIT: FI AVF for the injected structures, ACE for the scalar file
    // (the paper's Fig. 3 folds the studied structures together).
    let lds_avf_for_fit = lds_fi.as_ref().map(|r| r.avf).unwrap_or(lds.avf_ace);
    let fit = FitBreakdown::from_avf(arch, rf.avf_fi, lds_avf_for_fit, srf_avf_ace.unwrap_or(0.0));
    let e = eit(arch, golden.cycles);
    let point = EvalPoint {
        device: arch.name.clone(),
        workload: workload.name().to_string(),
        uses_local_memory: workload.uses_local_memory(),
        cycles: golden.cycles,
        rf,
        lds,
        srf_avf_ace,
        fit,
        eit: e,
        epf: epf(e, fit.total()),
    };
    if let Some(started) = started {
        let seconds = started.elapsed().as_secs_f64();
        hook.observe("study_point_seconds", seconds);
        if H::SPANS {
            hook.span(
                &SpanRecord::new(
                    format!("point:{}@{}", point.workload, point.device),
                    0,
                    0,
                    started,
                )
                .tag("fault_model", cfg.campaign.fault_model.as_str()),
            );
        }
        hook.event(
            &Event::new("study.point")
                .field("workload", point.workload.as_str())
                .field("device", point.device.as_str())
                .field("fault_model", cfg.campaign.fault_model.as_str())
                .field("cycles", point.cycles)
                .field("rf_avf", point.rf.avf_fi)
                .field("lds_avf", point.lds.avf_fi)
                .field("epf", point.epf)
                .field("seconds", seconds),
        );
    }
    Ok(point)
}

/// The assembled study: every (device, workload) point.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StudyResult {
    /// One entry per (device, workload) pair, workload-major.
    pub points: Vec<EvalPoint>,
}

/// One bar group of Fig. 1 / Fig. 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvfRow {
    /// Workload name (`average` for the trailing group).
    pub workload: String,
    /// Device name.
    pub device: String,
    /// Fault-injection AVF.
    pub avf_fi: f64,
    /// ACE-analysis AVF.
    pub avf_ace: f64,
    /// Occupancy (the red line).
    pub occupancy: f64,
}

/// One bar of Fig. 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpfRow {
    /// Workload name.
    pub workload: String,
    /// Device name.
    pub device: String,
    /// Executions in 10⁹ hours.
    pub eit: f64,
    /// Total FIT of the studied structures.
    pub fit_gpu: f64,
    /// Executions per failure.
    pub epf: f64,
}

/// The paper's headline observations, quantified over the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Findings {
    /// Mean of `AVF_ACE − AVF_FI` over the register file (expected
    /// strongly positive: F3, ACE overestimates the RF).
    pub rf_ace_gap: f64,
    /// Mean of `AVF_ACE − AVF_FI` over the local memory (expected small:
    /// F3, ACE is accurate for local memory).
    pub lds_ace_gap: f64,
    /// Pearson correlation of RF AVF (FI) with RF occupancy (F2).
    pub rf_avf_occupancy_corr: f64,
    /// Pearson correlation of LDS AVF (FI) with LDS occupancy (F2).
    pub lds_avf_occupancy_corr: f64,
    /// Min and max RF AVF across all points (F1: strong variation).
    pub rf_avf_range: (f64, f64),
    /// Min and max EPF across all points (F4: orders of magnitude).
    pub epf_range: (f64, f64),
}

impl StudyResult {
    /// Fig. 1 series: register-file AVF (FI + ACE) and occupancy per
    /// (workload, device), plus the per-device `average` group.
    pub fn fig1_rows(&self) -> Vec<AvfRow> {
        let mut rows: Vec<AvfRow> = self
            .points
            .iter()
            .map(|p| AvfRow {
                workload: p.workload.clone(),
                device: p.device.clone(),
                avf_fi: p.rf.avf_fi,
                avf_ace: p.rf.avf_ace,
                occupancy: p.rf.occupancy,
            })
            .collect();
        rows.extend(self.average_rows(|p| (p.rf.avf_fi, p.rf.avf_ace, p.rf.occupancy)));
        rows
    }

    /// Fig. 2 series: local-memory AVF and occupancy for the workloads
    /// that use it, plus per-device averages.
    pub fn fig2_rows(&self) -> Vec<AvfRow> {
        let mut rows: Vec<AvfRow> = self
            .points
            .iter()
            .filter(|p| p.uses_local_memory)
            .map(|p| AvfRow {
                workload: p.workload.clone(),
                device: p.device.clone(),
                avf_fi: p.lds.avf_fi,
                avf_ace: p.lds.avf_ace,
                occupancy: p.lds.occupancy,
            })
            .collect();
        let devices = self.device_order();
        for dev in devices {
            let pts: Vec<&EvalPoint> = self
                .points
                .iter()
                .filter(|p| p.device == dev && p.uses_local_memory)
                .collect();
            if pts.is_empty() {
                continue;
            }
            let n = pts.len() as f64;
            rows.push(AvfRow {
                workload: "average".into(),
                device: dev,
                avf_fi: pts.iter().map(|p| p.lds.avf_fi).sum::<f64>() / n,
                avf_ace: pts.iter().map(|p| p.lds.avf_ace).sum::<f64>() / n,
                occupancy: pts.iter().map(|p| p.lds.occupancy).sum::<f64>() / n,
            });
        }
        rows
    }

    /// Fig. 3 series: EPF per (workload, device).
    pub fn fig3_rows(&self) -> Vec<EpfRow> {
        self.points
            .iter()
            .map(|p| EpfRow {
                workload: p.workload.clone(),
                device: p.device.clone(),
                eit: p.eit,
                fit_gpu: p.fit.total(),
                epf: p.epf,
            })
            .collect()
    }

    fn device_order(&self) -> Vec<String> {
        let mut devices = Vec::new();
        for p in &self.points {
            if !devices.contains(&p.device) {
                devices.push(p.device.clone());
            }
        }
        devices
    }

    fn average_rows(&self, f: impl Fn(&EvalPoint) -> (f64, f64, f64)) -> Vec<AvfRow> {
        self.device_order()
            .into_iter()
            .filter_map(|dev| {
                let pts: Vec<&EvalPoint> = self.points.iter().filter(|p| p.device == dev).collect();
                if pts.is_empty() {
                    return None;
                }
                let n = pts.len() as f64;
                let (mut fi, mut ace, mut occ) = (0.0, 0.0, 0.0);
                for p in &pts {
                    let (a, b, c) = f(p);
                    fi += a;
                    ace += b;
                    occ += c;
                }
                Some(AvfRow {
                    workload: "average".into(),
                    device: dev,
                    avf_fi: fi / n,
                    avf_ace: ace / n,
                    occupancy: occ / n,
                })
            })
            .collect()
    }

    /// Quantifies the paper's four findings over the collected points.
    pub fn findings(&self) -> Findings {
        let n = self.points.len().max(1) as f64;
        let rf_ace_gap = self
            .points
            .iter()
            .map(|p| p.rf.avf_ace - p.rf.avf_fi)
            .sum::<f64>()
            / n;
        let lds_pts: Vec<&EvalPoint> = self.points.iter().filter(|p| p.uses_local_memory).collect();
        let lds_n = lds_pts.len().max(1) as f64;
        let lds_ace_gap = lds_pts
            .iter()
            .map(|p| p.lds.avf_ace - p.lds.avf_fi)
            .sum::<f64>()
            / lds_n;
        let rf_avf: Vec<f64> = self.points.iter().map(|p| p.rf.avf_fi).collect();
        let rf_occ: Vec<f64> = self.points.iter().map(|p| p.rf.occupancy).collect();
        let lds_avf: Vec<f64> = lds_pts.iter().map(|p| p.lds.avf_fi).collect();
        let lds_occ: Vec<f64> = lds_pts.iter().map(|p| p.lds.occupancy).collect();
        let epfs: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.epf)
            .filter(|e| e.is_finite())
            .collect();
        Findings {
            rf_ace_gap,
            lds_ace_gap,
            rf_avf_occupancy_corr: pearson(&rf_avf, &rf_occ),
            lds_avf_occupancy_corr: pearson(&lds_avf, &lds_occ),
            rf_avf_range: minmax(&rf_avf),
            epf_range: minmax(&epfs),
        }
    }
}

fn minmax(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if v.is_empty() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Runs the study over the given devices and workloads (workload-major
/// order, matching the paper's figure layout).
///
/// # Errors
///
/// Propagates the first launch failure.
pub fn run_study(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
) -> Result<StudyResult, SimError> {
    run_study_hooked(archs, workloads, cfg, &NoopHook)
}

/// [`run_study`] with full telemetry through `hook` — every golden run,
/// ladder build, campaign and study point reports its metrics and
/// events. With [`NoopHook`] this *is* `run_study`.
///
/// # Errors
///
/// Same as [`run_study`].
pub fn run_study_hooked<H: TelemetryHook>(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
    hook: &H,
) -> Result<StudyResult, SimError> {
    let mut points = Vec::new();
    for w in workloads {
        for arch in archs {
            points.push(evaluate_point_hooked(arch, w.as_ref(), cfg, hook)?);
        }
    }
    Ok(StudyResult { points })
}

/// [`run_study`] with the (device, workload) points sharded across a
/// scoped pool of `jobs` workers instead of parallelising inside each
/// campaign.
///
/// Point-level parallelism beats replay-level parallelism once the study
/// has at least as many points as cores: the golden run, the ACE pass
/// and the ladder build — all serial within one point — then overlap
/// across points too. Each worker evaluates its points with
/// single-threaded campaigns so total parallelism stays at `jobs`, and
/// the assembled result keeps the same workload-major point order as
/// [`run_study`]. Campaign results are thread-count invariant, so the
/// study result is bit-identical to the sequential one.
///
/// # Errors
///
/// Propagates the failure of the lowest-index failing point, matching
/// the error [`run_study`] would report.
pub fn run_study_parallel(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
    jobs: usize,
) -> Result<StudyResult, SimError> {
    run_study_parallel_hooked(archs, workloads, cfg, jobs, &NoopHook)
}

/// [`run_study_parallel`] with full telemetry through `hook`. The hook
/// is shared across point workers; the metrics registry shards per
/// thread and merges associatively, so harvested totals match the
/// sequential run.
///
/// # Errors
///
/// Same as [`run_study_parallel`].
pub fn run_study_parallel_hooked<H: TelemetryHook>(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
    jobs: usize,
    hook: &H,
) -> Result<StudyResult, SimError> {
    let n = workloads.len() * archs.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return run_study_hooked(archs, workloads, cfg, hook);
    }
    // Within a point the campaigns run single-threaded: the pool is
    // already `jobs` wide, and campaign results do not depend on their
    // internal thread count.
    let mut point_cfg = *cfg;
    point_cfg.campaign.threads = 1;
    let point_cfg = &point_cfg;
    let per_worker: Vec<Vec<(usize, Result<EvalPoint, SimError>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    (w..n)
                        .step_by(jobs)
                        .map(|idx| {
                            let workload = workloads[idx / archs.len()].as_ref();
                            let arch = &archs[idx % archs.len()];
                            (idx, evaluate_point_hooked(arch, workload, point_cfg, hook))
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("study worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<Result<EvalPoint, SimError>>> = (0..n).map(|_| None).collect();
    for (idx, r) in per_worker.into_iter().flatten() {
        slots[idx] = Some(r);
    }
    let mut points = Vec::with_capacity(n);
    for slot in slots {
        points.push(slot.expect("every point index was assigned to a worker")?);
    }
    Ok(StudyResult { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use gpu_archs::{quadro_fx_5600, quadro_fx_5800};
    use gpu_workloads::{Transpose, VectorAdd};

    fn tiny_cfg() -> StudyConfig {
        StudyConfig {
            campaign: CampaignConfig {
                injections: 8,
                threads: 2,
                ..CampaignConfig::quick(5)
            },
            workload_seed: 5,
            fi_on_unused_lds: false,
            provenance: false,
            ace_mode: AceMode::default(),
            sampling: SamplingPlan::default(),
        }
    }

    #[test]
    fn evaluate_point_populates_everything() {
        let arch = quadro_fx_5600();
        let w = Transpose::new(32, 5);
        let p = evaluate_point(&arch, &w, &tiny_cfg()).unwrap();
        assert_eq!(p.device, "Quadro FX 5600");
        assert_eq!(p.workload, "transpose");
        assert!(p.uses_local_memory);
        assert!(p.cycles > 0);
        assert_eq!(p.rf.tally.total(), 8);
        assert_eq!(p.lds.tally.total(), 8, "LDS workload gets LDS injections");
        assert!(p.rf.occupancy > 0.0);
        assert!(p.eit > 0.0);
        assert!(p.epf > 0.0);
        assert!(p.srf_avf_ace.is_none(), "no scalar file on G80");
    }

    #[test]
    fn non_lds_workload_skips_lds_campaign() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 5);
        let p = evaluate_point(&arch, &w, &tiny_cfg()).unwrap();
        assert_eq!(p.lds.tally.total(), 0);
        assert_eq!(p.lds.avf_fi, 0.0);
        assert_eq!(p.lds.occupancy, 0.0, "vectoradd allocates no LDS");
    }

    #[test]
    fn figures_assemble() {
        let archs = vec![quadro_fx_5600(), quadro_fx_5800()];
        let workloads: Vec<Box<dyn gpu_workloads::Workload>> = vec![
            Box::new(VectorAdd::new(256, 5)),
            Box::new(Transpose::new(32, 5)),
        ];
        let study = run_study(&archs, &workloads, &tiny_cfg()).unwrap();
        assert_eq!(study.points.len(), 4);

        let fig1 = study.fig1_rows();
        // 2 workloads × 2 devices + 2 averages.
        assert_eq!(fig1.len(), 6);
        assert_eq!(fig1.iter().filter(|r| r.workload == "average").count(), 2);

        let fig2 = study.fig2_rows();
        // Only transpose uses LDS: 2 rows + 2 averages.
        assert_eq!(fig2.len(), 4);

        let fig3 = study.fig3_rows();
        assert_eq!(fig3.len(), 4);
        assert!(fig3.iter().all(|r| r.epf > 0.0));

        let f = study.findings();
        assert!(f.rf_avf_range.0 <= f.rf_avf_range.1);
        assert!(f.epf_range.0 <= f.epf_range.1);
    }

    #[test]
    fn parallel_study_is_bit_identical_to_sequential() {
        let archs = vec![quadro_fx_5600(), quadro_fx_5800()];
        let workloads: Vec<Box<dyn gpu_workloads::Workload>> = vec![
            Box::new(VectorAdd::new(256, 5)),
            Box::new(Transpose::new(32, 5)),
        ];
        let cfg = tiny_cfg();
        let seq = run_study(&archs, &workloads, &cfg).unwrap();
        for jobs in [1, 2, 8] {
            let par = run_study_parallel(&archs, &workloads, &cfg, jobs).unwrap();
            assert_eq!(par.points.len(), seq.points.len());
            for (a, b) in seq.points.iter().zip(&par.points) {
                assert_eq!(a.device, b.device, "jobs = {jobs}: point order");
                assert_eq!(a.workload, b.workload, "jobs = {jobs}: point order");
                assert_eq!(a.rf.tally, b.rf.tally, "jobs = {jobs}");
                assert_eq!(a.lds.tally, b.lds.tally, "jobs = {jobs}");
                assert_eq!(a.rf.avf_fi.to_bits(), b.rf.avf_fi.to_bits());
                assert_eq!(a.epf.to_bits(), b.epf.to_bits());
            }
        }
    }

    #[test]
    fn minmax_handles_empty() {
        assert_eq!(minmax(&[]), (0.0, 0.0));
        assert_eq!(minmax(&[2.0, -1.0, 5.0]), (-1.0, 5.0));
    }
}
