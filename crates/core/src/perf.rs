//! Performance profiling of workloads — the "performance" half of the
//! paper's reliability-vs-performance correlation.
//!
//! The paper's thesis is that neither AVF nor throughput alone guides a
//! designer: EPF needs both. [`profile`] captures the performance side of
//! one (device, workload) pairing in a single fault-free run: cycles,
//! instruction mix, IPC, memory transactions and cache behaviour.

use gpu_workloads::Workload;
use serde::{Deserialize, Serialize};
use simt_sim::{ArchConfig, Gpu, NoopObserver, SimError};

/// Performance profile of one workload on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfProfile {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Total application cycles.
    pub cycles: u64,
    /// Warp-level (vector) instructions issued.
    pub warp_instructions: u64,
    /// Scalar instructions issued (Southern Islands only).
    pub scalar_instructions: u64,
    /// Thread-level instructions (sum over active lanes).
    pub thread_instructions: u64,
    /// Coalesced global-memory transactions.
    pub mem_transactions: u64,
    /// L1 hit rate (0 when the device has no L1 or no accesses).
    pub l1_hit_rate: f64,
    /// L2 hit rate, when an L2 exists.
    pub l2_hit_rate: Option<f64>,
    /// Kernel launches executed.
    pub launches: u32,
    /// Mean fraction of cycles each SM spent issuing (load × balance).
    pub sm_utilization: f64,
    /// Wall-clock execution time on the modelled device, in microseconds.
    pub device_time_us: f64,
}

impl PerfProfile {
    /// Warp instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles as f64
        }
    }

    /// Average active lanes per warp instruction (SIMD efficiency
    /// numerator; divide by the warp size for the efficiency ratio).
    pub fn lanes_per_instruction(&self) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.warp_instructions as f64
        }
    }
}

/// Profiles one fault-free execution.
///
/// # Errors
///
/// Propagates launch failures.
///
/// # Example
/// ```
/// use grel_core::perf::profile;
/// use gpu_archs::geforce_gtx_480;
/// use gpu_workloads::VectorAdd;
///
/// let p = profile(&geforce_gtx_480(), &VectorAdd::new(1024, 1))?;
/// assert!(p.cycles > 0);
/// assert!(p.ipc() > 0.0);
/// assert!(p.l2_hit_rate.is_some(), "Fermi has an L2");
/// # Ok::<(), simt_sim::SimError>(())
/// ```
pub fn profile(arch: &ArchConfig, workload: &dyn Workload) -> Result<PerfProfile, SimError> {
    let mut gpu = Gpu::new(arch.clone());
    workload.run(&mut gpu, &mut NoopObserver)?;
    let totals = gpu.exec_totals();
    let cycles = gpu.app_cycle();
    let sm_utilization = if cycles == 0 {
        0.0
    } else {
        totals.busy_cycles as f64 / (cycles as f64 * arch.num_sms as f64)
    };
    Ok(PerfProfile {
        device: arch.name.clone(),
        workload: workload.name().to_string(),
        cycles,
        warp_instructions: totals.warp_instructions,
        scalar_instructions: totals.scalar_instructions,
        thread_instructions: totals.thread_instructions,
        mem_transactions: gpu.mem_transactions(),
        l1_hit_rate: gpu.l1_stats().hit_rate(),
        l2_hit_rate: gpu.l2_stats().map(|s| s.hit_rate()),
        launches: gpu.launches(),
        sm_utilization,
        device_time_us: cycles as f64 / arch.clock_mhz as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{hd_radeon_7970, quadro_fx_5600};
    use gpu_workloads::{MatrixMul, VectorAdd};

    #[test]
    fn profile_reports_consistent_counters() {
        let p = profile(&quadro_fx_5600(), &VectorAdd::new(512, 1)).unwrap();
        assert!(p.cycles > 0);
        assert!(p.warp_instructions > 0);
        assert!(p.thread_instructions >= p.warp_instructions);
        assert!(p.mem_transactions > 0, "vectoradd moves memory");
        assert_eq!(p.scalar_instructions, 0, "no scalar unit on G80");
        assert_eq!(p.l2_hit_rate, None, "no L2 on G80");
        assert_eq!(p.launches, 1);
        assert!(p.device_time_us > 0.0);
    }

    #[test]
    fn si_uses_its_scalar_pipe() {
        let p = profile(&hd_radeon_7970(), &MatrixMul::new(32, 1)).unwrap();
        assert!(p.scalar_instructions > 0, "tile loop counters run scalar");
    }

    #[test]
    fn lanes_per_instruction_bounded_by_warp() {
        let arch = quadro_fx_5600();
        let p = profile(&arch, &VectorAdd::new(512, 1)).unwrap();
        let lanes = p.lanes_per_instruction();
        assert!(lanes > 0.0 && lanes <= arch.warp_size as f64, "{lanes}");
    }

    #[test]
    fn ipc_zero_for_empty_profile() {
        let p = PerfProfile {
            device: "d".into(),
            workload: "w".into(),
            cycles: 0,
            warp_instructions: 0,
            scalar_instructions: 0,
            thread_instructions: 0,
            mem_transactions: 0,
            l1_hit_rate: 0.0,
            l2_hit_rate: None,
            launches: 0,
            sm_utilization: 0.0,
            device_time_us: 0.0,
        };
        assert_eq!(p.ipc(), 0.0);
        assert_eq!(p.lanes_per_instruction(), 0.0);
    }
}
