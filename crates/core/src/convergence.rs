//! Streaming convergence monitoring for fault-injection campaigns.
//!
//! A campaign's AVF estimate is a binomial proportion whose
//! finite-population error margin shrinks as injections accumulate
//! (`stats::error_margin`). Until this module, that margin was only
//! visible *after* the campaign finished — a 2,000-injection run was a
//! black box for its whole duration. [`ConvergenceMonitor`] folds the
//! merged outcome stream into a running [`Tally`] and emits
//! `campaign.convergence` events at a configurable cadence, each
//! carrying the running proportion, its 99 % finite-population interval
//! (via [`crate::stats::Proportion`]), and a projected
//! injections-to-target-margin estimate (Leveugle's
//! [`crate::stats::required_sample_size`]).
//!
//! # Determinism
//!
//! The monitor is wired through `runner::replay_sites` *after* the
//! scatter-merge: it folds the site-order outcome vector serially, so
//! every emitted event is a pure function of `(sites, outcomes,
//! cadence)` — byte-identical at any `--jobs` count, with pruning and
//! batching on or off (the same contract the tallies themselves honour,
//! asserted in `tests/convergence_equivalence.rs`). No wall-clock value
//! ever enters an event body; sinks that stamp timestamps (JSONL
//! `t_ms`) do so outside the event fields.

use crate::campaign::{structure_label, Outcome, Tally};
use crate::stats::{required_sample_size, Proportion, Z_99};
use grel_telemetry::{Event, Json, TelemetryHook};
use simt_sim::{FaultModelKind, Structure};

/// The paper's target margin: ±2.88 % at 99 % confidence, the precision
/// footnote 4 buys with 2,000 injections. Projections in
/// `campaign.convergence` events estimate the injections needed to
/// reach this margin over the campaign's own population.
pub const DEFAULT_TARGET_MARGIN: f64 = 0.0288;

/// The running statistical state of one campaign, derived purely from
/// the merged outcome stream (no clocks, no worker identity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceSnapshot {
    /// Outcomes folded so far.
    pub seen: u64,
    /// Total injections the campaign will perform.
    pub planned: u64,
    /// Per-outcome counts over the first `seen` merged sites.
    pub tally: Tally,
    /// Running AVF point estimate (`failures / seen`).
    pub avf: f64,
    /// Finite-population error margin at 99 % confidence.
    pub margin99: f64,
    /// Lower bound of the 99 % interval, clamped to `[0, 1]`.
    pub lo: f64,
    /// Upper bound of the 99 % interval, clamped to `[0, 1]`.
    pub hi: f64,
    /// The margin the projection aims for.
    pub target_margin: f64,
    /// Injections needed to reach `target_margin` over this campaign's
    /// population (Leveugle's sample-size formula).
    pub projected_total: u64,
    /// Injections still missing towards `projected_total` (zero once
    /// reached).
    pub projected_remaining: u64,
    /// Whether the current margin is already at or below the target.
    pub converged: bool,
}

/// One stratum's progress towards its allocation, carried in
/// `campaign.convergence` events when the adaptive sampler drives the
/// campaign (see [`crate::sampling`]). Uniform campaigns have no
/// strata, and their event bodies stay byte-identical to the
/// pre-stratification format — the `strata` field is only present when
/// progress has been registered via
/// [`ConvergenceMonitor::set_strata`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratumProgress {
    /// Stratum label (e.g. `live/c1/b0` or `dead`).
    pub label: String,
    /// Sites sampled from the stratum so far (pruned sites included).
    pub seen: u64,
    /// The allocation target the current round plans for the stratum.
    pub planned: u64,
}

/// Folds merged injection outcomes into running per-outcome tallies and
/// emits `campaign.convergence` events every `cadence` outcomes (plus a
/// final event at the end of the stream).
///
/// # Example
/// ```
/// use grel_core::convergence::ConvergenceMonitor;
/// use grel_core::campaign::Outcome;
/// use grel_telemetry::{MemorySink, MetricsRegistry, RegistryHook};
/// use simt_sim::{FaultModelKind, Structure};
///
/// let reg = MetricsRegistry::new();
/// let sink = MemorySink::new();
/// let hook = RegistryHook::with_sink(&reg, &sink);
/// let mut mon = ConvergenceMonitor::new(
///     "vectoradd",
///     "GeForce GTX 480",
///     Structure::VectorRegisterFile,
///     FaultModelKind::Transient,
///     1 << 40,
///     4,
///     2,
/// );
/// for o in [Outcome::Masked, Outcome::Sdc, Outcome::Masked, Outcome::Due] {
///     mon.observe(o, &hook);
/// }
/// mon.finish(&hook);
/// // Cadence 2 over 4 outcomes: events at seen = 2 and seen = 4.
/// assert_eq!(sink.events().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ConvergenceMonitor {
    workload: String,
    device: String,
    structure: Structure,
    kind: FaultModelKind,
    population: u64,
    planned: u64,
    cadence: u64,
    target: f64,
    tally: Tally,
    emitted_at: u64,
    strata: Vec<StratumProgress>,
}

impl ConvergenceMonitor {
    /// A monitor for one campaign of `planned` injections over a
    /// `population`-site fault universe, emitting every `cadence`
    /// merged outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `cadence == 0` — a zero cadence means "disabled" and
    /// belongs to the caller (`CampaignConfig::convergence`), not the
    /// monitor.
    pub fn new(
        workload: &str,
        device: &str,
        structure: Structure,
        kind: FaultModelKind,
        population: u64,
        planned: u64,
        cadence: u64,
    ) -> Self {
        assert!(cadence > 0, "convergence cadence must be positive");
        ConvergenceMonitor {
            workload: workload.to_string(),
            device: device.to_string(),
            structure,
            kind,
            population,
            planned,
            cadence,
            target: DEFAULT_TARGET_MARGIN,
            tally: Tally::default(),
            emitted_at: 0,
            strata: Vec::new(),
        }
    }

    /// Replaces the projection target margin (default
    /// [`DEFAULT_TARGET_MARGIN`]).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a positive finite margin.
    pub fn with_target(mut self, target: f64) -> Self {
        assert!(
            target.is_finite() && target > 0.0,
            "target margin must be a positive finite proportion"
        );
        self.target = target;
        self
    }

    /// Replaces the planned-injection total. An adaptive campaign does
    /// not know its final sample size up front — the allocation grows
    /// round by round — so the engine updates the plan before each
    /// emission instead of pinning it at construction.
    pub fn set_planned(&mut self, planned: u64) {
        self.planned = planned;
    }

    /// Registers per-stratum seen/planned progress to be carried in
    /// every subsequent `campaign.convergence` event (as a `strata`
    /// JSON array). An empty vector removes the field again; uniform
    /// campaigns never call this, so their events keep the exact
    /// pre-stratification byte layout.
    pub fn set_strata(&mut self, strata: Vec<StratumProgress>) {
        self.strata = strata;
    }

    /// Emits a `campaign.convergence` event immediately, regardless of
    /// the cadence — the adaptive engine calls this at every round
    /// boundary. A no-op before the first fold (no trials, no
    /// estimate).
    pub fn emit_now<H: TelemetryHook>(&mut self, hook: &H) {
        if self.tally.total() > 0 {
            self.emit(hook);
        }
    }

    /// Folds one merged outcome; emits a `campaign.convergence` event
    /// when a cadence boundary is crossed.
    pub fn observe<H: TelemetryHook>(&mut self, outcome: Outcome, hook: &H) {
        self.tally.add(outcome);
        if self.tally.total().is_multiple_of(self.cadence) {
            self.emit(hook);
        }
    }

    /// Emits the final event for a stream that did not end on a cadence
    /// boundary; a no-op if the last fold already emitted (or nothing
    /// was folded at all).
    pub fn finish<H: TelemetryHook>(&mut self, hook: &H) {
        if self.tally.total() > self.emitted_at {
            self.emit(hook);
        }
    }

    /// The running statistical state. `None` until at least one outcome
    /// has been folded (no trials, no estimate).
    pub fn snapshot(&self) -> Option<ConvergenceSnapshot> {
        let seen = self.tally.total();
        if seen == 0 {
            return None;
        }
        let p = Proportion::new(self.tally.failures(), seen, self.population);
        let margin99 = p.margin(Z_99);
        let (lo, hi) = p.interval(Z_99);
        let projected_total = required_sample_size(self.population, self.target, Z_99);
        Some(ConvergenceSnapshot {
            seen,
            planned: self.planned,
            tally: self.tally,
            avf: p.value,
            margin99,
            lo,
            hi,
            target_margin: self.target,
            projected_total,
            projected_remaining: projected_total.saturating_sub(seen),
            converged: margin99 <= self.target,
        })
    }

    fn emit<H: TelemetryHook>(&mut self, hook: &H) {
        let snap = self
            .snapshot()
            .expect("emit is only reached after a fold, so a snapshot exists");
        self.emitted_at = snap.seen;
        let strata = (!self.strata.is_empty()).then(|| {
            Json::Arr(
                self.strata
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("label".to_string(), Json::from(s.label.as_str())),
                            ("seen".to_string(), Json::from(s.seen)),
                            ("planned".to_string(), Json::from(s.planned)),
                        ])
                    })
                    .collect(),
            )
        });
        hook.event(
            &Event::new("campaign.convergence")
                .field("workload", self.workload.as_str())
                .field("device", self.device.as_str())
                .field("structure", structure_label(self.structure))
                .field("fault_kind", self.kind.as_str())
                .field("seen", snap.seen)
                .field("planned", snap.planned)
                .field("masked", snap.tally.masked)
                .field("sdc", snap.tally.sdc)
                .field("due", snap.tally.due)
                .field("hang", snap.tally.hang)
                .field("avf", snap.avf)
                .field("margin99", snap.margin99)
                .field("lo", snap.lo)
                .field("hi", snap.hi)
                .field("target_margin", snap.target_margin)
                .field("projected_total", snap.projected_total)
                .field("projected_remaining", snap.projected_remaining)
                .field("converged", snap.converged)
                .field_opt("strata", strata),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grel_telemetry::{MemorySink, MetricsRegistry, RegistryHook};

    fn monitor(population: u64, planned: u64, cadence: u64) -> ConvergenceMonitor {
        ConvergenceMonitor::new(
            "vectoradd",
            "GeForce GTX 480",
            Structure::VectorRegisterFile,
            FaultModelKind::Transient,
            population,
            planned,
            cadence,
        )
    }

    fn fold(mon: &mut ConvergenceMonitor, outcomes: &[Outcome]) -> Vec<String> {
        let reg = MetricsRegistry::new();
        let sink = MemorySink::new();
        let hook = RegistryHook::with_sink(&reg, &sink);
        for &o in outcomes {
            mon.observe(o, &hook);
        }
        mon.finish(&hook);
        sink.events()
            .iter()
            .map(|e| e.to_json().to_string())
            .collect()
    }

    #[test]
    fn emits_on_cadence_and_at_end() {
        let mut mon = monitor(1 << 40, 7, 3);
        let events = fold(&mut mon, &[Outcome::Masked; 7]);
        // Boundaries at 3 and 6, plus the final partial event at 7.
        assert_eq!(events.len(), 3);
        assert!(events[0].contains("\"seen\":3"), "{}", events[0]);
        assert!(events[1].contains("\"seen\":6"), "{}", events[1]);
        assert!(events[2].contains("\"seen\":7"), "{}", events[2]);
    }

    #[test]
    fn no_duplicate_final_event_on_exact_boundary() {
        let mut mon = monitor(1 << 40, 6, 3);
        let events = fold(&mut mon, &[Outcome::Masked; 6]);
        assert_eq!(events.len(), 2, "6 outcomes at cadence 3: two events");
    }

    #[test]
    fn empty_stream_emits_nothing() {
        let mut mon = monitor(1 << 40, 0, 5);
        assert!(fold(&mut mon, &[]).is_empty());
        assert_eq!(mon.snapshot(), None);
    }

    #[test]
    fn margin_shrinks_and_projection_counts_down() {
        let mut mon = monitor(1 << 40, 200, 1);
        let reg = MetricsRegistry::new();
        let sink = MemorySink::new();
        let hook = RegistryHook::with_sink(&reg, &sink);
        let mut last_margin = f64::INFINITY;
        let mut last_remaining = u64::MAX;
        for i in 0..200u64 {
            let o = if i % 10 == 0 {
                Outcome::Sdc
            } else {
                Outcome::Masked
            };
            mon.observe(o, &hook);
            let snap = mon.snapshot().unwrap();
            assert!(snap.margin99 < last_margin, "margin must shrink");
            assert!(snap.projected_remaining < last_remaining);
            assert!(snap.lo <= snap.avf && snap.avf <= snap.hi);
            last_margin = snap.margin99;
            last_remaining = snap.projected_remaining;
        }
        let snap = mon.snapshot().unwrap();
        assert_eq!(snap.seen, 200);
        assert_eq!(snap.tally.sdc, 20);
        assert!((snap.avf - 0.1).abs() < 1e-12);
        assert!(!snap.converged, "200 of ~2000 needed cannot be converged");
    }

    #[test]
    fn exhaustive_campaign_converges_immediately() {
        // population == planned == 4: after folding everything the
        // margin is exactly zero, below any positive target.
        let mut mon = monitor(4, 4, 4);
        let events = fold(&mut mon, &[Outcome::Masked; 4]);
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("\"converged\":true"), "{}", events[0]);
        assert!(events[0].contains("\"margin99\":0"), "{}", events[0]);
    }

    #[test]
    fn events_are_a_pure_function_of_the_stream() {
        let outcomes = [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::Due,
            Outcome::Masked,
            Outcome::Hang,
        ];
        let a = fold(&mut monitor(1 << 30, 5, 2), &outcomes);
        let b = fold(&mut monitor(1 << 30, 5, 2), &outcomes);
        assert_eq!(a, b, "identical streams must serialize identically");
    }

    #[test]
    fn strata_field_absent_by_default_present_when_registered() {
        let plain = fold(&mut monitor(1 << 40, 2, 2), &[Outcome::Masked; 2]);
        assert_eq!(plain.len(), 1);
        assert!(!plain[0].contains("strata"), "{}", plain[0]);

        let mut mon = monitor(1 << 40, 2, 2);
        mon.set_planned(9);
        mon.set_strata(vec![
            StratumProgress {
                label: "live/c0/b0".into(),
                seen: 1,
                planned: 8,
            },
            StratumProgress {
                label: "dead".into(),
                seen: 1,
                planned: 1,
            },
        ]);
        let events = fold(&mut mon, &[Outcome::Masked; 2]);
        assert_eq!(events.len(), 1);
        let j = grel_telemetry::Json::parse(&events[0]).unwrap();
        assert_eq!(j.get("planned").and_then(Json::as_u64), Some(9));
        let strata = j.get("strata").and_then(Json::as_arr).expect("strata");
        assert_eq!(strata.len(), 2);
        assert_eq!(
            strata[0].get("label").and_then(Json::as_str),
            Some("live/c0/b0")
        );
        assert_eq!(strata[0].get("seen").and_then(Json::as_u64), Some(1));
        assert_eq!(strata[0].get("planned").and_then(Json::as_u64), Some(8));
        assert_eq!(strata[1].get("label").and_then(Json::as_str), Some("dead"));
    }

    #[test]
    fn emit_now_forces_an_off_cadence_event() {
        let mut mon = monitor(1 << 40, 10, 1000);
        let reg = MetricsRegistry::new();
        let sink = MemorySink::new();
        let hook = RegistryHook::with_sink(&reg, &sink);
        mon.emit_now(&hook);
        assert!(sink.events().is_empty(), "nothing folded, nothing emitted");
        mon.observe(Outcome::Sdc, &hook);
        mon.emit_now(&hook);
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].get("seen").and_then(Json::as_u64), Some(1));
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn zero_cadence_rejected() {
        let _ = monitor(1 << 40, 10, 0);
    }

    #[test]
    #[should_panic(expected = "target margin must be")]
    fn bad_target_rejected() {
        let _ = monitor(1 << 40, 10, 1).with_target(0.0);
    }
}
