//! Detailed campaign analysis: per-site outcomes, bit-position
//! sensitivity, execution-phase sensitivity, and multi-bit upsets — the
//! deeper cuts the paper's "full scale of the study" paragraph promises
//! for follow-up work.

use crate::campaign::{
    golden_run, run_injections_checkpointed, sample_model_sites, CampaignConfig, CheckpointLadder,
    Outcome,
};
use gpu_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simt_sim::{ArchConfig, Due, FaultSite, Gpu, NoopObserver, SimError, Structure};

/// One injection with its classified outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteOutcome {
    /// Where and when the bit flipped.
    pub site: FaultSite,
    /// What happened.
    pub outcome: Outcome,
}

/// A campaign that keeps every `(site, outcome)` pair for post-analysis.
///
/// # Errors
///
/// Fails only if the fault-free golden run fails.
///
/// # Example
/// ```
/// use grel_core::breakdown::detailed_campaign;
/// use grel_core::campaign::CampaignConfig;
/// use gpu_workloads::VectorAdd;
/// use gpu_archs::quadro_fx_5600;
/// use simt_sim::Structure;
///
/// let mut cfg = CampaignConfig::quick(1);
/// cfg.injections = 12;
/// let detail = detailed_campaign(
///     &quadro_fx_5600(), &VectorAdd::new(256, 1),
///     Structure::VectorRegisterFile, cfg)?;
/// assert_eq!(detail.len(), 12);
/// # Ok::<(), simt_sim::SimError>(())
/// ```
pub fn detailed_campaign(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
) -> Result<Vec<SiteOutcome>, SimError> {
    let golden = golden_run(arch, workload)?;
    let sites = sample_model_sites(
        arch,
        structure,
        cfg.fault_model,
        golden.cycles,
        cfg.injections,
        cfg.seed,
    );
    let ladder = CheckpointLadder::build(arch, workload, &golden, &cfg)?;
    let outcomes = run_injections_checkpointed(arch, workload, &golden, &ladder, &sites, cfg)?;
    Ok(sites
        .into_iter()
        .zip(outcomes)
        .map(|(site, outcome)| SiteOutcome { site, outcome })
        .collect())
}

/// AVF per bit position (0 = LSB … 31 = MSB), from a detailed campaign.
///
/// Buckets with no samples report `f64::NAN`; check
/// [`f64::is_nan`] before plotting.
pub fn avf_by_bit(detail: &[SiteOutcome]) -> [f64; 32] {
    let mut fail = [0u64; 32];
    let mut total = [0u64; 32];
    for d in detail {
        let b = d.site.bit as usize & 31;
        total[b] += 1;
        if d.outcome != Outcome::Masked {
            fail[b] += 1;
        }
    }
    std::array::from_fn(|b| {
        if total[b] == 0 {
            f64::NAN
        } else {
            fail[b] as f64 / total[b] as f64
        }
    })
}

/// AVF per execution phase: the run is split into `phases` equal cycle
/// windows; returns `(avf, samples)` per window. Early-phase flips tend
/// to be overwritten (masked), late-phase flips die with the launch.
pub fn avf_by_phase(detail: &[SiteOutcome], total_cycles: u64, phases: usize) -> Vec<(f64, u64)> {
    assert!(phases > 0, "need at least one phase");
    let mut fail = vec![0u64; phases];
    let mut total = vec![0u64; phases];
    for d in detail {
        let p = ((d.site.cycle as u128 * phases as u128) / total_cycles.max(1) as u128) as usize;
        let p = p.min(phases - 1);
        total[p] += 1;
        if d.outcome != Outcome::Masked {
            fail[p] += 1;
        }
    }
    (0..phases)
        .map(|p| {
            let avf = if total[p] == 0 {
                f64::NAN
            } else {
                fail[p] as f64 / total[p] as f64
            };
            (avf, total[p])
        })
        .collect()
}

/// Fraction of failures that are DUEs (vs SDCs) in a detailed campaign.
pub fn due_fraction(detail: &[SiteOutcome]) -> f64 {
    let failures = detail
        .iter()
        .filter(|d| d.outcome != Outcome::Masked)
        .count();
    if failures == 0 {
        return 0.0;
    }
    let dues = detail.iter().filter(|d| d.outcome == Outcome::Due).count();
    dues as f64 / failures as f64
}

/// Multi-bit-upset campaign: flips `width` *adjacent* bits at once (the
/// dominant MBU pattern in real SRAM), classifying like the single-bit
/// campaign.
///
/// # Errors
///
/// Fails only if the golden run fails.
///
/// # Example
/// ```
/// use grel_core::breakdown::mbu_campaign;
/// use grel_core::campaign::CampaignConfig;
/// use gpu_workloads::VectorAdd;
/// use gpu_archs::quadro_fx_5600;
/// use simt_sim::Structure;
///
/// let mut cfg = CampaignConfig::quick(1);
/// cfg.injections = 8;
/// let tally = mbu_campaign(
///     &quadro_fx_5600(), &VectorAdd::new(256, 1),
///     Structure::VectorRegisterFile, 2, cfg)?;
/// assert_eq!(tally.total(), 8);
/// # Ok::<(), simt_sim::SimError>(())
/// ```
pub fn mbu_campaign(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    width: u8,
    cfg: CampaignConfig,
) -> Result<crate::campaign::Tally, SimError> {
    assert!((1..=32).contains(&width), "MBU width must be 1..=32");
    let golden = golden_run(arch, workload)?;
    let words = match structure {
        Structure::VectorRegisterFile => arch.rf_words_per_sm(),
        Structure::LocalMemory => arch.lds_words_per_sm(),
        Structure::ScalarRegisterFile => arch.srf_words_per_sm(),
    };
    assert!(words > 0, "device has no {structure}");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6b75);
    let mut tally = crate::campaign::Tally::default();
    for _ in 0..cfg.injections {
        let sm = rng.gen_range(0..arch.num_sms);
        let word = rng.gen_range(0..words);
        let first_bit = rng.gen_range(0..=(32 - width as u32)) as u8;
        let cycle = rng.gen_range(0..golden.cycles);
        let sites: Vec<FaultSite> = (0..width)
            .map(|i| FaultSite::new(structure, sm, word, first_bit + i, cycle))
            .collect();
        let mut gpu = Gpu::new(arch.clone());
        gpu.set_watchdog(golden.cycles * cfg.watchdog_factor + 10_000);
        gpu.arm_faults(&sites);
        let outcome = match workload.run(&mut gpu, &mut NoopObserver) {
            Ok(out) if out == golden.outputs => Outcome::Masked,
            Ok(_) => Outcome::Sdc,
            Err(SimError::Due(Due::WatchdogTimeout { .. })) => Outcome::Hang,
            Err(SimError::Due(_)) => Outcome::Due,
            Err(e) => return Err(e),
        };
        match outcome {
            Outcome::Masked => tally.masked += 1,
            Outcome::Sdc => tally.sdc += 1,
            Outcome::Due => tally.due += 1,
            Outcome::Hang => tally.hang += 1,
        }
    }
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::quadro_fx_5600;
    use gpu_workloads::VectorAdd;
    use simt_sim::Structure;

    fn cfg(n: u32) -> CampaignConfig {
        CampaignConfig {
            injections: n,
            threads: 1,
            ..CampaignConfig::quick(3)
        }
    }

    fn fake_detail() -> Vec<SiteOutcome> {
        let site = |bit, cycle, outcome| SiteOutcome {
            site: FaultSite::new(Structure::VectorRegisterFile, 0, 0, bit, cycle),
            outcome,
        };
        vec![
            site(0, 10, Outcome::Masked),
            site(0, 20, Outcome::Sdc),
            site(5, 80, Outcome::Due),
            site(5, 90, Outcome::Due),
        ]
    }

    #[test]
    fn bit_breakdown_buckets() {
        let by_bit = avf_by_bit(&fake_detail());
        assert_eq!(by_bit[0], 0.5);
        assert_eq!(by_bit[5], 1.0);
        assert!(by_bit[1].is_nan(), "unsampled bit");
    }

    #[test]
    fn phase_breakdown_buckets() {
        let phases = avf_by_phase(&fake_detail(), 100, 2);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0], (0.5, 2));
        assert_eq!(phases[1], (1.0, 2));
    }

    #[test]
    fn due_fraction_counts() {
        assert!((due_fraction(&fake_detail()) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(due_fraction(&[]), 0.0);
    }

    #[test]
    fn detailed_campaign_pairs_sites_and_outcomes() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 1);
        let d = detailed_campaign(&arch, &w, Structure::VectorRegisterFile, cfg(10)).unwrap();
        assert_eq!(d.len(), 10);
        // Same seed reproduces the same detail.
        let d2 = detailed_campaign(&arch, &w, Structure::VectorRegisterFile, cfg(10)).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn mbu_runs_and_single_bit_matches_sbu_statistics() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 1);
        let t2 = mbu_campaign(&arch, &w, Structure::VectorRegisterFile, 2, cfg(10)).unwrap();
        assert_eq!(t2.total(), 10);
        let t1 = mbu_campaign(&arch, &w, Structure::VectorRegisterFile, 1, cfg(10)).unwrap();
        assert_eq!(t1.total(), 10);
    }

    #[test]
    #[should_panic(expected = "MBU width")]
    fn mbu_width_bounds() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(64, 1);
        let _ = mbu_campaign(&arch, &w, Structure::VectorRegisterFile, 0, cfg(1));
    }
}
