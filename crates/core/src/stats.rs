//! Statistical machinery for fault-injection campaigns.
//!
//! The paper's footnote 4 calibrates its campaigns with the standard
//! statistical fault-injection sample-size model (Leveugle et al., DATE
//! 2009): treating each injection as a Bernoulli trial with the
//! conservative `p = 0.5`, a sample of `n` faults from a population of `N`
//! possible (bit, cycle) pairs estimates the AVF within margin
//!
//! ```text
//! e = z · sqrt( p(1-p)/n · (N-n)/(N-1) )
//! ```
//!
//! With 2,000 injections and 99 % confidence this gives the paper's quoted
//! **2.88 %** margin (the finite-population factor is ≈ 1 for any real
//! structure).

/// z-score for 90 % confidence.
pub const Z_90: f64 = 1.645;
/// z-score for 95 % confidence.
pub const Z_95: f64 = 1.960;
/// z-score for 99 % confidence (the paper's choice).
pub const Z_99: f64 = 2.576;

/// The error margin of an `n`-injection campaign over a population of
/// `population` fault sites, at confidence `z`.
///
/// Uses the conservative `p = 0.5`. Returns 0 when `n >= population`
/// (exhaustive injection is exact).
///
/// # Example
/// ```
/// use grel_core::stats::{error_margin, Z_99};
/// // The paper's footnote: 2,000 injections -> 2.88% at 99% confidence.
/// let e = error_margin(u64::MAX, 2000, Z_99);
/// assert!((e - 0.0288).abs() < 0.0001);
/// ```
pub fn error_margin(population: u64, n: u64, z: f64) -> f64 {
    assert!(n > 0, "campaign must have at least one injection");
    if n >= population {
        return 0.0;
    }
    let nn = n as f64;
    let pop = population as f64;
    let fpc = (pop - nn) / (pop - 1.0);
    z * (0.25 / nn * fpc).sqrt()
}

/// The number of injections needed to reach margin `e` at confidence `z`
/// over a population of `population` sites (Leveugle's formula).
///
/// # Example
/// ```
/// use grel_core::stats::{required_sample_size, Z_99};
/// let n = required_sample_size(u64::MAX, 0.0288, Z_99);
/// assert!((1990..=2010).contains(&n), "n = {n}");
/// ```
pub fn required_sample_size(population: u64, e: f64, z: f64) -> u64 {
    assert!(e > 0.0, "margin must be positive");
    let pop = population as f64;
    let n = pop / (1.0 + e * e * (pop - 1.0) / (z * z * 0.25));
    n.ceil() as u64
}

/// Size of the fault-site population for a structure of `bits` bits over
/// an execution of `cycles` cycles (every bit in every cycle is a distinct
/// candidate single-bit flip).
///
/// Saturates at `u64::MAX`.
///
/// # Example
/// ```
/// use grel_core::stats::fault_population;
/// assert_eq!(fault_population(32, 100), 3200);
/// ```
pub fn fault_population(bits: u64, cycles: u64) -> u64 {
    bits.saturating_mul(cycles)
}

/// Per-cycle site count of the control-fault population: every bit of
/// every control target (scheduler slot, active mask, scoreboard entry,
/// barrier counter — 4 targets × 32 bits) of every warp slot of every
/// SM. Multiply by cycles via [`fault_population`] for the campaign
/// population.
///
/// Saturates at `u64::MAX`.
///
/// # Example
/// ```
/// use grel_core::stats::control_sites_per_cycle;
/// // 2 SMs × 16 warp slots × 4 targets × 32 bits
/// assert_eq!(control_sites_per_cycle(2, 16), 4096);
/// ```
pub fn control_sites_per_cycle(sms: u64, warp_slots: u64) -> u64 {
    sms.saturating_mul(warp_slots).saturating_mul(4 * 32)
}

/// A binomial proportion with its confidence interval: the AVF estimate a
/// campaign produces.
///
/// # Example
/// ```
/// use grel_core::stats::Proportion;
/// let p = Proportion::new(140, 2000, u64::MAX);
/// assert!((p.value - 0.07).abs() < 1e-12);
/// assert!(p.margin_99 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Point estimate (`hits / trials`).
    pub value: f64,
    /// Number of positive outcomes.
    pub hits: u64,
    /// Number of trials.
    pub trials: u64,
    /// Size of the sampled fault-site population (carried so intervals
    /// at other confidence levels keep the finite-population correction).
    pub population: u64,
    /// Error margin at 99 % confidence (conservative `p = 0.5` model).
    pub margin_99: f64,
}

impl Proportion {
    /// Builds the estimate for `hits` out of `trials` samples drawn from
    /// `population` sites.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`, or if `hits > trials` — a proportion
    /// above 1 is not an estimate but an accounting bug (e.g. merging
    /// tallies from different campaigns), and silently producing
    /// `AVF > 1` would poison every downstream FIT/EPF figure.
    pub fn new(hits: u64, trials: u64, population: u64) -> Self {
        assert!(trials > 0, "proportion needs at least one trial");
        assert!(
            hits <= trials,
            "proportion needs hits <= trials (got {hits}/{trials})"
        );
        Proportion {
            value: hits as f64 / trials as f64,
            hits,
            trials,
            population,
            margin_99: error_margin(population, trials, Z_99),
        }
    }

    /// The error margin at confidence `z`, with the same conservative
    /// `p = 0.5` model and finite-population correction as
    /// [`error_margin`]. Zero when the campaign was exhaustive
    /// (`trials >= population`).
    pub fn margin(&self, z: f64) -> f64 {
        error_margin(self.population, self.trials, z)
    }

    /// The interval `[value - margin(z), value + margin(z)]` clamped to
    /// `[0, 1]`. Degenerates to the point `(value, value)` when the
    /// campaign sampled the whole population.
    ///
    /// # Example
    /// ```
    /// use grel_core::stats::{Proportion, Z_90, Z_99};
    /// let p = Proportion::new(140, 2000, u64::MAX);
    /// let (lo90, hi90) = p.interval(Z_90);
    /// let (lo99, hi99) = p.interval(Z_99);
    /// assert!(lo99 < lo90 && hi90 < hi99, "99% interval is wider");
    /// ```
    pub fn interval(&self, z: f64) -> (f64, f64) {
        let m = self.margin(z);
        ((self.value - m).max(0.0), (self.value + m).min(1.0))
    }

    /// The interval at the paper's 99 % confidence level
    /// ([`interval`](Self::interval) at [`Z_99`]).
    pub fn interval_99(&self) -> (f64, f64) {
        (
            (self.value - self.margin_99).max(0.0),
            (self.value + self.margin_99).min(1.0),
        )
    }

    /// The Wilson score interval at confidence `z`, with the same
    /// finite-population correction as [`interval`](Self::interval).
    ///
    /// Unlike the normal approximation, the Wilson interval stays
    /// honest at the extremes the adaptive sampler lives in — a stratum
    /// with 0 failures out of 20 pilots gets a strictly positive upper
    /// bound instead of a degenerate `[0, 0]` — which is what makes it
    /// usable as a per-stratum standard-deviation floor for Neyman
    /// allocation. Both bounds are inside `[0, 1]` by construction, the
    /// interval is nested in `z` (a larger z only widens it), and it
    /// converges to the normal-approximation interval as trials grow.
    ///
    /// The finite-population correction enters as an effective sample
    /// size `n / fpc²` (`fpc² = (N - n)/(N - 1)`), which preserves the
    /// exact-score nesting property; an exhaustive campaign
    /// (`trials >= population`) degenerates to the point estimate.
    ///
    /// # Example
    /// ```
    /// use grel_core::stats::{Proportion, Z_99};
    /// let p = Proportion::new(0, 20, u64::MAX);
    /// let (lo, hi) = p.wilson(Z_99);
    /// assert_eq!(lo, 0.0);
    /// assert!(hi > 0.0, "zero failures still leave upside uncertainty");
    /// ```
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        if self.trials >= self.population {
            return (self.value, self.value);
        }
        let n = self.trials as f64;
        let pop = self.population as f64;
        // fpc² = (N-n)/(N-1); dividing n by it inflates the effective
        // sample size, shrinking the score interval the same way the
        // fpc shrinks the normal margin.
        let fpc2 = (pop - n) / (pop - 1.0);
        let n_eff = n / fpc2;
        let p = self.value;
        let z2 = z * z;
        let denom = 1.0 + z2 / n_eff;
        let center = (p + z2 / (2.0 * n_eff)) / denom;
        let halfwidth = z / denom * (p * (1.0 - p) / n_eff + z2 / (4.0 * n_eff * n_eff)).sqrt();
        // The Wilson interval provably contains the point estimate;
        // snap the bounds to it so floating-point rounding can never
        // leave `p̂` a few ulps outside (0 failures must give lo == 0).
        let lo = (center - halfwidth).max(0.0).min(self.value);
        let hi = (center + halfwidth).min(1.0).max(self.value);
        (lo, hi)
    }
}

/// Pearson correlation coefficient of two equal-length samples (used for
/// the paper's AVF ↔ occupancy observation).
///
/// Returns 0 for degenerate inputs (fewer than two points or zero
/// variance).
///
/// # Example
/// ```
/// use grel_core::stats::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must pair up");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_footnote_margin() {
        // "2,000 fault injections ... 2.88% error margin for 99%
        // confidence level"
        let e = error_margin(1u64 << 60, 2000, Z_99);
        assert!((e - 0.0288).abs() < 1e-4, "e = {e}");
    }

    #[test]
    fn margin_shrinks_with_samples() {
        let pop = 1u64 << 40;
        assert!(error_margin(pop, 100, Z_99) > error_margin(pop, 1000, Z_99));
        assert!(error_margin(pop, 1000, Z_95) < error_margin(pop, 1000, Z_99));
    }

    #[test]
    fn exhaustive_campaign_is_exact() {
        assert_eq!(error_margin(500, 500, Z_99), 0.0);
        assert_eq!(error_margin(500, 600, Z_99), 0.0);
    }

    #[test]
    fn sample_size_round_trips_margin() {
        let pop = 1u64 << 50;
        for &target in &[0.05, 0.02, 0.01] {
            let n = required_sample_size(pop, target, Z_95);
            let e = error_margin(pop, n, Z_95);
            assert!(e <= target + 1e-9, "margin {e} for requested {target}");
        }
    }

    #[test]
    fn finite_population_reduces_sample() {
        // A small population needs fewer samples than an infinite one.
        let small = required_sample_size(10_000, 0.01, Z_99);
        let big = required_sample_size(1u64 << 60, 0.01, Z_99);
        assert!(small < big);
    }

    #[test]
    fn proportion_interval() {
        let p = Proportion::new(0, 100, 1u64 << 40);
        assert_eq!(p.value, 0.0);
        assert_eq!(p.interval_99().0, 0.0, "clamped at zero");
        let q = Proportion::new(100, 100, 1u64 << 40);
        assert_eq!(q.interval_99().1, 1.0, "clamped at one");
    }

    #[test]
    fn interval_generalizes_interval_99() {
        let p = Proportion::new(30, 200, 1u64 << 40);
        assert_eq!(p.interval(Z_99), p.interval_99());
        assert!(p.margin(Z_90) < p.margin(Z_95));
        assert!(p.margin(Z_95) < p.margin(Z_99));
    }

    #[test]
    fn exhaustive_proportion_interval_degenerates() {
        // trials == population: the campaign measured every site, so any
        // confidence level collapses to the point estimate.
        let p = Proportion::new(3, 10, 10);
        assert_eq!(p.margin(Z_99), 0.0);
        assert_eq!(p.interval(Z_90), (p.value, p.value));
        assert_eq!(p.interval(Z_99), (p.value, p.value));
    }

    #[test]
    fn wilson_brackets_the_estimate_and_stays_in_unit_range() {
        for &(hits, trials) in &[(0u64, 20u64), (1, 20), (10, 20), (20, 20), (140, 2000)] {
            let p = Proportion::new(hits, trials, 1u64 << 40);
            let (lo, hi) = p.wilson(Z_99);
            assert!((0.0..=1.0).contains(&lo), "{hits}/{trials}: lo = {lo}");
            assert!((0.0..=1.0).contains(&hi), "{hits}/{trials}: hi = {hi}");
            assert!(lo <= p.value && p.value <= hi, "{hits}/{trials}");
        }
    }

    #[test]
    fn wilson_zero_failures_keep_positive_upper_bound() {
        let p = Proportion::new(0, 32, 1u64 << 40);
        let (lo, hi) = p.wilson(Z_99);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.25, "hi = {hi}");
    }

    #[test]
    fn wilson_is_nested_in_z() {
        let p = Proportion::new(7, 50, 1u64 << 40);
        let (lo95, hi95) = p.wilson(Z_95);
        let (lo99, hi99) = p.wilson(Z_99);
        assert!(lo99 <= lo95 && hi95 <= hi99);
    }

    #[test]
    fn wilson_converges_to_normal_interval() {
        // Wald and Wilson differ by O(z²/n); at n = 200,000 the gap
        // must be far inside the z²/n envelope.
        let trials = 200_000;
        let p = Proportion::new(trials / 10, trials, u64::MAX);
        let (wlo, whi) = p.wilson(Z_99);
        let m = Z_99 * (p.value * (1.0 - p.value) / trials as f64).sqrt();
        let (nlo, nhi) = (p.value - m, p.value + m);
        let tol = 1.5 * Z_99 * Z_99 / trials as f64;
        assert!((wlo - nlo).abs() < tol, "lo gap {}", (wlo - nlo).abs());
        assert!((whi - nhi).abs() < tol, "hi gap {}", (whi - nhi).abs());
    }

    #[test]
    fn wilson_exhaustive_degenerates_to_point() {
        let p = Proportion::new(3, 10, 10);
        assert_eq!(p.wilson(Z_90), (p.value, p.value));
        assert_eq!(p.wilson(Z_99), (p.value, p.value));
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0, "zero variance");
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0, "single point");
        let r = pearson(&[1.0, 2.0, 3.0, 4.0], &[1.1, 1.9, 3.2, 3.8]);
        assert!(r > 0.99);
    }

    #[test]
    fn population_saturates() {
        assert_eq!(fault_population(u64::MAX, 2), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one injection")]
    fn zero_sample_rejected() {
        let _ = error_margin(100, 0, Z_99);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trial_proportion_rejected() {
        let _ = Proportion::new(0, 0, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "hits <= trials")]
    fn overfull_proportion_rejected() {
        let _ = Proportion::new(101, 100, 1 << 20);
    }
}
