//! Deterministic parallel replay runner: the scoped worker pool behind
//! every fault-injection campaign.
//!
//! A campaign's injections are embarrassingly parallel — each one replays
//! the workload from the nearest checkpoint with a single bit flip armed
//! and classifies the outcome independently of every other injection.
//! The runner exploits that while keeping a hard determinism contract:
//!
//! **Campaign results are a pure function of `(arch, workload, sites,
//! cfg)` — never of the worker count or of thread scheduling.**
//!
//! The contract holds by construction:
//!
//! 1. the fault-site list is sampled up front from the seed (the runner
//!    never draws randomness);
//! 2. sites are sorted by `(fault cycle, site index)` — a deterministic
//!    total order — so neighbouring replays resume from the same ladder
//!    rung;
//! 3. the sorted order is dealt round-robin across `jobs` workers
//!    (worker `w` takes positions `w, w + jobs, w + 2·jobs, …`), which
//!    balances the expensive early-cycle replays and the cheap
//!    late-cycle ones evenly without any work-stealing;
//! 4. each worker owns its own device ([`Gpu`]) and drives its own
//!    replay [`Session`](simt_sim::Session) per injection, while the
//!    golden [`CheckpointLadder`] is shared read-only (`&` — it is
//!    immutable and `Sync`);
//! 5. every outcome is scattered back into its site's original index, so
//!    the returned vector is in **site order** regardless of which worker
//!    finished first.
//!
//! Telemetry shards per worker thread inside the
//! [`MetricsRegistry`](grel_telemetry::MetricsRegistry) and merges
//! associatively at harvest, so hooked runs observe the same totals at
//! any job count (per-worker series are labelled `worker="N"` by stripe
//! index, not by OS thread, and are therefore deterministic too).

use crate::ace::LifetimeOracle;
use crate::campaign::{
    campaign_population, classify_batch_on, classify_on, classify_traced_on, structure_label,
    CampaignConfig, CheckpointLadder, GoldenRun, Outcome,
};
use crate::convergence::ConvergenceMonitor;
use gpu_workloads::Workload;
use grel_telemetry::{SpanRecord, TelemetryHook};
use simt_sim::{
    ArchConfig, FaultModelKind, FaultSite, GlobalWrite, Gpu, SimError, TraceRecord,
    MAX_BATCH_SCENARIOS,
};
use std::time::Instant;

/// Everything a worker needs, shared read-only across the pool.
struct ReplayShared<'a, H> {
    arch: &'a ArchConfig,
    workload: &'a dyn Workload,
    golden: &'a GoldenRun,
    sites: &'a [FaultSite],
    /// Site indices sorted by `(fault cycle, index)`.
    order: &'a [usize],
    cfg: CampaignConfig,
    ladder: &'a CheckpointLadder,
    /// Whether replays arm the clean-overwrite early-exit probe.
    early_exit: bool,
    /// `point:{workload}@{device}/campaign:{structure}` when span
    /// tracing is on — the parent path every replay span hangs off.
    /// `None` whenever `H::SPANS` is false, so the no-profile path
    /// never formats a string.
    span_prefix: Option<String>,
    hook: &'a H,
}

/// The profile prefix for a campaign's replay spans, or `None` when the
/// hook records no spans (or there is nothing to replay).
fn replay_span_prefix<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    sites: &[FaultSite],
) -> Option<String> {
    (H::SPANS && !sites.is_empty()).then(|| {
        format!(
            "point:{}@{}/campaign:{}",
            workload.name(),
            arch.name,
            structure_label(sites[0].structure)
        )
    })
}

/// Streams the merged site-order outcome vector through a
/// [`ConvergenceMonitor`], emitting `campaign.convergence` events every
/// `cfg.convergence` outcomes. Runs serially *after* the scatter-merge,
/// so the event stream is a pure function of `(sites, outcomes,
/// cadence)` and inherits the runner's determinism contract verbatim:
/// byte-identical at any job count, with pruning and batching on or
/// off. A zero cadence disables the stream.
fn stream_convergence<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    sites: &[FaultSite],
    cfg: CampaignConfig,
    outcomes: &[Outcome],
    hook: &H,
) {
    if !H::ENABLED || cfg.convergence == 0 || sites.is_empty() {
        return;
    }
    let structure = sites[0].structure;
    let mut monitor = ConvergenceMonitor::new(
        workload.name(),
        &arch.name,
        structure,
        cfg.fault_model,
        campaign_population(arch, structure, cfg.fault_model, golden.cycles),
        sites.len() as u64,
        cfg.convergence,
    );
    for &o in outcomes {
        monitor.observe(o, hook);
    }
    monitor.finish(hook);
}

/// Records one injection's replay span plus the log2-microsecond latency
/// buckets the profile report renders. Only called when `H::SPANS`.
///
/// The span path is keyed by the **site index**, not the worker, so the
/// structural span tree is identical at any job count; the worker only
/// shows up as the timeline lane (and in the jobs-variant `worker:*`
/// sibling spans, which structural diffs exclude).
#[allow(clippy::too_many_arguments)]
fn record_injection_span<H: TelemetryHook>(
    hook: &H,
    prefix: &str,
    injection_started: Instant,
    site_index: usize,
    worker: usize,
    outcome: Outcome,
    site: FaultSite,
    rung: Option<usize>,
    busy_us: &mut u64,
) {
    let us = injection_started.elapsed().as_micros() as u64;
    *busy_us += us;
    let rung_label = match rung {
        Some(idx) => idx.to_string(),
        None => "none".to_string(),
    };
    hook.span(
        &SpanRecord::new(
            format!("{prefix}/replay/inj:{site_index:06}"),
            worker as u32 + 1,
            site_index as u64,
            injection_started,
        )
        .tag("outcome", outcome.as_str())
        .tag("kind", site.kind.as_str())
        .tag("rung", &rung_label),
    );
    // log2 buckets: bucket b holds latencies in [2^b, 2^(b+1)) µs, and
    // the counter accumulates microseconds (not samples) so the report
    // shows where wall time went, not just how many replays landed where.
    let bucket = 63 - us.max(1).leading_zeros();
    let outcome_label = outcome.as_str();
    hook.count(
        &format!(
            "campaign_injection_latency_us_total{{outcome=\"{outcome_label}\",bucket=\"{bucket:02}\"}}"
        ),
        us,
    );
    let kind_label = site.kind.as_str();
    hook.count(
        &format!(
            "campaign_injection_latency_by_kind_us_total{{kind=\"{kind_label}\",bucket=\"{bucket:02}\"}}"
        ),
        us,
    );
}

/// Records a worker's whole-loop timeline span and its utilization
/// counters (busy µs over alive µs). Only called when `H::SPANS`.
fn record_worker_span<H: TelemetryHook>(
    hook: &H,
    prefix: &str,
    started: Instant,
    worker: usize,
    injections: usize,
    busy_us: u64,
) {
    hook.span(
        &SpanRecord::new(
            format!("{prefix}/replay/worker:{worker:02}"),
            worker as u32 + 1,
            worker as u64,
            started,
        )
        .tag("injections", injections)
        .tag("busy_us", busy_us),
    );
    hook.count(
        &format!("campaign_worker_busy_us_total{{worker=\"{worker}\"}}"),
        busy_us,
    );
    hook.count(
        &format!("campaign_worker_us_total{{worker=\"{worker}\"}}"),
        started.elapsed().as_micros() as u64,
    );
}

/// Replays one site scalar on the worker's device, emitting the full
/// per-injection telemetry (outcome/kind/rung counters, latency sample,
/// replay span). Shared by the scalar worker loop and by the batched
/// loop's singleton units, so the two paths can never drift.
fn replay_scalar_site<H: TelemetryHook>(
    shared: &ReplayShared<'_, H>,
    gpu: &mut Gpu,
    i: usize,
    worker: usize,
    busy_us: &mut u64,
) -> Result<Outcome, SimError> {
    let hook = shared.hook;
    let site = shared.sites[i];
    let rung = shared.ladder.nearest_indexed(site.cycle);
    let injection_started = H::ENABLED.then(Instant::now);
    let outcome = classify_on(
        gpu,
        shared.arch,
        shared.workload,
        shared.golden,
        site,
        shared.cfg.watchdog_factor,
        shared.early_exit,
        rung.map(|(_, ck)| ck),
        hook,
    )?;
    if let Some(injection_started) = injection_started {
        hook.observe(
            "campaign_injection_seconds",
            injection_started.elapsed().as_secs_f64(),
        );
        let outcome_label = outcome.as_str();
        hook.count(
            &format!("campaign_injections_total{{outcome=\"{outcome_label}\"}}"),
            1,
        );
        if outcome == Outcome::Hang {
            hook.count("campaign_hang_total", 1);
        }
        let kind_label = site.kind.as_str();
        hook.count(
            &format!("campaign_injections_by_kind_total{{kind=\"{kind_label}\"}}"),
            1,
        );
        let rung_label = match rung {
            Some((idx, _)) => idx.to_string(),
            None => "none".to_string(),
        };
        hook.count(
            &format!("campaign_rung_hits_total{{rung=\"{rung_label}\"}}"),
            1,
        );
    }
    if H::SPANS {
        if let (Some(injection_started), Some(prefix)) =
            (injection_started, shared.span_prefix.as_deref())
        {
            record_injection_span(
                hook,
                prefix,
                injection_started,
                i,
                worker,
                outcome,
                site,
                rung.map(|(idx, _)| idx),
                busy_us,
            );
        }
    }
    Ok(outcome)
}

/// One worker's replay loop: stripe `worker` of `jobs` over the sorted
/// order, on a single device reused across all of its replays.
///
/// Returns `(site index, outcome)` pairs; the caller scatters them back
/// into site order.
fn worker_loop<H: TelemetryHook>(
    shared: &ReplayShared<'_, H>,
    worker: usize,
    jobs: usize,
) -> Result<Vec<(usize, Outcome)>, SimError> {
    let hook = shared.hook;
    let started = H::ENABLED.then(Instant::now);
    // The worker's private device: checkpoint resumes overwrite it in
    // place, so the allocation is paid once per worker, not per replay.
    let mut gpu = Gpu::new(shared.arch.clone());
    let mut done = Vec::with_capacity(shared.order.len().div_ceil(jobs));
    let mut busy_us: u64 = 0;
    for &i in shared.order.iter().skip(worker).step_by(jobs) {
        let outcome = replay_scalar_site(shared, &mut gpu, i, worker, &mut busy_us)?;
        done.push((i, outcome));
    }
    if H::SPANS {
        if let (Some(started), Some(prefix)) = (started, shared.span_prefix.as_deref()) {
            record_worker_span(hook, prefix, started, worker, done.len(), busy_us);
        }
    }
    if let Some(started) = started {
        let seconds = started.elapsed().as_secs_f64();
        let per_second = if seconds > 0.0 {
            done.len() as f64 / seconds
        } else {
            0.0
        };
        hook.observe("campaign_worker_seconds", seconds);
        hook.count(
            &format!("campaign_worker_injections_total{{worker=\"{worker}\"}}"),
            done.len() as u64,
        );
        hook.gauge(
            &format!("campaign_worker_injections_per_second{{worker=\"{worker}\"}}"),
            per_second,
        );
    }
    Ok(done)
}

/// Groups the sorted site order into batched execution units: maximal
/// runs of consecutive transient sites, chunked at
/// [`MAX_BATCH_SCENARIOS`]. Non-transient sites become singleton units
/// in place. A unit may span checkpoint rungs — its shared pass resumes
/// from the rung of its *earliest* site and arms each later scenario
/// when the clock reaches its cycle, so one pass over the tail replaces
/// what would otherwise be one pass per rung. A pure function of
/// `(sites, order)` — unit composition never depends on the job count,
/// so dealing units round-robin keeps the determinism contract.
fn batch_units(sites: &[FaultSite], order: &[usize]) -> Vec<Vec<usize>> {
    let mut units: Vec<Vec<usize>> = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    for &i in order {
        let site = sites[i];
        if !site.is_transient() {
            if !run.is_empty() {
                units.push(std::mem::take(&mut run));
            }
            units.push(vec![i]);
            continue;
        }
        if run.len() == MAX_BATCH_SCENARIOS {
            units.push(std::mem::take(&mut run));
        }
        run.push(i);
    }
    if !run.is_empty() {
        units.push(run);
    }
    units
}

/// One worker's batched replay loop: stripe `worker` of `jobs` over the
/// unit list. Singleton units replay scalar with telemetry identical to
/// [`worker_loop`]; multi-site units run one shared pass through
/// [`classify_batch_on`], emitting the batch counters and span plus the
/// same per-site outcome/kind/rung accounting (latency is the batch
/// wall time split evenly across its sites).
fn worker_loop_batched<H: TelemetryHook>(
    shared: &ReplayShared<'_, H>,
    units: &[Vec<usize>],
    worker: usize,
    jobs: usize,
) -> Result<Vec<(usize, Outcome)>, SimError> {
    let hook = shared.hook;
    let started = H::ENABLED.then(Instant::now);
    let mut gpu = Gpu::new(shared.arch.clone());
    let mut done: Vec<(usize, Outcome)> = Vec::new();
    let mut busy_us: u64 = 0;
    for unit in units.iter().skip(worker).step_by(jobs) {
        if unit.len() == 1 {
            let i = unit[0];
            let outcome = replay_scalar_site(shared, &mut gpu, i, worker, &mut busy_us)?;
            done.push((i, outcome));
            continue;
        }
        let first = unit[0];
        let rung = shared.ladder.nearest_indexed(shared.sites[first].cycle);
        let batch_sites: Vec<FaultSite> = unit.iter().map(|&i| shared.sites[i]).collect();
        let batch_started = H::ENABLED.then(Instant::now);
        let rep = classify_batch_on(
            &mut gpu,
            shared.arch,
            shared.workload,
            shared.golden,
            &batch_sites,
            shared.cfg.watchdog_factor,
            shared.early_exit,
            rung.map(|(_, ck)| ck),
            hook,
        )?;
        if let Some(batch_started) = batch_started {
            let elapsed = batch_started.elapsed();
            hook.count("campaign_batches_total", 1);
            hook.count("campaign_batched_total", unit.len() as u64);
            hook.count("campaign_batch_forks_total", rep.forks as u64);
            if rep.fell_back {
                hook.count("campaign_batch_fallbacks_total", 1);
            }
            let per_site = elapsed.as_secs_f64() / unit.len() as f64;
            let rung_label = match rung {
                Some((idx, _)) => idx.to_string(),
                None => "none".to_string(),
            };
            for (&i, &outcome) in unit.iter().zip(&rep.outcomes) {
                hook.observe("campaign_injection_seconds", per_site);
                let outcome_label = outcome.as_str();
                hook.count(
                    &format!("campaign_injections_total{{outcome=\"{outcome_label}\"}}"),
                    1,
                );
                if outcome == Outcome::Hang {
                    hook.count("campaign_hang_total", 1);
                }
                let kind_label = shared.sites[i].kind.as_str();
                hook.count(
                    &format!("campaign_injections_by_kind_total{{kind=\"{kind_label}\"}}"),
                    1,
                );
                hook.count(
                    &format!("campaign_rung_hits_total{{rung=\"{rung_label}\"}}"),
                    1,
                );
            }
            if H::SPANS {
                if let Some(prefix) = shared.span_prefix.as_deref() {
                    busy_us += elapsed.as_micros() as u64;
                    hook.span(
                        &SpanRecord::new(
                            format!("{prefix}/replay/batch:{first:06}"),
                            worker as u32 + 1,
                            first as u64,
                            batch_started,
                        )
                        .tag("sites", unit.len())
                        .tag("forks", rep.forks)
                        .tag("rung", &rung_label),
                    );
                    // One nested span per batched site, keyed by site
                    // index like the scalar path, so the structural
                    // tree still carries one `inj:` node per replayed
                    // injection at any job count. Each spans the whole
                    // unit's wall time — when its scenario was in
                    // flight — while the latency buckets get the
                    // even per-site share.
                    let us_share = (elapsed.as_micros() as u64 / unit.len() as u64).max(1);
                    let bucket = 63 - us_share.leading_zeros();
                    for (&i, &outcome) in unit.iter().zip(&rep.outcomes) {
                        hook.span(
                            &SpanRecord::new(
                                format!("{prefix}/replay/batch:{first:06}/inj:{i:06}"),
                                worker as u32 + 1,
                                i as u64,
                                batch_started,
                            )
                            .tag("outcome", outcome.as_str())
                            .tag("kind", shared.sites[i].kind.as_str())
                            .tag("rung", &rung_label),
                        );
                        let outcome_label = outcome.as_str();
                        hook.count(
                            &format!(
                                "campaign_injection_latency_us_total{{outcome=\"{outcome_label}\",bucket=\"{bucket:02}\"}}"
                            ),
                            us_share,
                        );
                        let kind_label = shared.sites[i].kind.as_str();
                        hook.count(
                            &format!(
                                "campaign_injection_latency_by_kind_us_total{{kind=\"{kind_label}\",bucket=\"{bucket:02}\"}}"
                            ),
                            us_share,
                        );
                    }
                }
            }
        }
        for (&i, &o) in unit.iter().zip(&rep.outcomes) {
            done.push((i, o));
        }
    }
    if H::SPANS {
        if let (Some(started), Some(prefix)) = (started, shared.span_prefix.as_deref()) {
            record_worker_span(hook, prefix, started, worker, done.len(), busy_us);
        }
    }
    if let Some(started) = started {
        let seconds = started.elapsed().as_secs_f64();
        let per_second = if seconds > 0.0 {
            done.len() as f64 / seconds
        } else {
            0.0
        };
        hook.observe("campaign_worker_seconds", seconds);
        hook.count(
            &format!("campaign_worker_injections_total{{worker=\"{worker}\"}}"),
            done.len() as u64,
        );
        hook.gauge(
            &format!("campaign_worker_injections_per_second{{worker=\"{worker}\"}}"),
            per_second,
        );
    }
    Ok(done)
}

/// Replays every site, fanning the work out over `cfg.threads` scoped
/// workers, and returns the outcomes **in site order** — bit-identical
/// to a sequential run at any job count.
///
/// With an `oracle`, sites whose fault cycle falls outside every live
/// interval of their word are pre-classified as `Masked` *before* the
/// fan-out — serially, so the replayed set is a pure function of the
/// inputs and the determinism contract is untouched. Each pruned site
/// still produces the full per-injection telemetry (a zero-latency
/// sample, an `outcome="masked"` count and a `rung="pruned"` hit), so
/// hooked totals account for every sampled site at any pruning rate.
///
/// Without an oracle, `cfg.early_exit` arms a [`MaskProbe`]
/// (`simt_sim::MaskProbe`) per replay that abandons the run as `Masked`
/// at the first clean erasure of the unread flipped word. Under an
/// oracle the probe stays off: every surviving site is read before its
/// first clean overwrite, so the probe could never fire and would only
/// slow the replay loop down.
///
/// # Errors
///
/// Propagates replay failures that are not fault classifications. When
/// several workers fail, the error of the lowest-numbered worker wins,
/// keeping even the failure mode deterministic.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_sites<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    sites: &[FaultSite],
    cfg: CampaignConfig,
    ladder: &CheckpointLadder,
    oracle: Option<&LifetimeOracle>,
    hook: &H,
) -> Result<Vec<Outcome>, SimError> {
    // Serial pre-classification: pruned sites keep their pre-filled
    // `Masked` slot and never reach a worker.
    let span_prefix = replay_span_prefix::<H>(arch, workload, sites);
    let mut outcomes = vec![Outcome::Masked; sites.len()];
    let live: Vec<usize> = match oracle {
        Some(oracle) => {
            let prune_started = H::SPANS.then(Instant::now);
            let live: Vec<usize> = (0..sites.len())
                .filter(|&i| !oracle.is_dead(sites[i]))
                .collect();
            if let (Some(prune_started), Some(prefix)) = (prune_started, span_prefix.as_deref()) {
                hook.span(
                    &SpanRecord::new(format!("{prefix}/prune"), 0, 0, prune_started)
                        .tag("pruned", sites.len() - live.len())
                        .tag("total", sites.len()),
                );
            }
            if H::ENABLED {
                let pruned = (sites.len() - live.len()) as u64;
                if pruned > 0 {
                    hook.count("campaign_pruned_total", pruned);
                    hook.count("campaign_injections_total{outcome=\"masked\"}", pruned);
                    // Only transient sites can be pruned (the oracle is
                    // kind-gated), so the kind label is unconditional.
                    hook.count(
                        "campaign_injections_by_kind_total{kind=\"transient\"}",
                        pruned,
                    );
                    hook.count("campaign_rung_hits_total{rung=\"pruned\"}", pruned);
                    // Saturate: a long golden run times a large pruned
                    // count can clear u64::MAX, and a wrapped counter
                    // would report absurd savings instead of a floor.
                    hook.count(
                        "campaign_cycles_saved_total",
                        pruned.saturating_mul(golden.cycles),
                    );
                    for _ in 0..pruned {
                        hook.observe("campaign_injection_seconds", 0.0);
                    }
                }
            }
            live
        }
        None => (0..sites.len()).collect(),
    };
    let mut order = live;
    order.sort_by_key(|&i| (sites[i].cycle, i));
    // Bit-plane batching: group the sorted order into shared-pass units.
    // Kind-gated like pruning — only the transient model batches (the
    // overlay lane model assumes a one-shot flip).
    let units = (cfg.batch && cfg.fault_model == FaultModelKind::Transient)
        .then(|| batch_units(sites, &order));
    let work_items = units.as_ref().map_or(order.len(), Vec::len);
    let jobs = cfg.threads.max(1).min(work_items.max(1));
    if H::ENABLED {
        hook.gauge("campaign_workers", jobs as f64);
    }
    let shared = ReplayShared {
        arch,
        workload,
        golden,
        sites,
        order: &order,
        cfg,
        ladder,
        early_exit: cfg.early_exit && oracle.is_none(),
        span_prefix,
        hook,
    };
    let replay_started = H::SPANS.then(Instant::now);
    let batches: Vec<Vec<(usize, Outcome)>> = match units.as_deref() {
        Some(units) if jobs == 1 => vec![worker_loop_batched(&shared, units, 0, 1)?],
        Some(units) => {
            let results: Vec<Result<Vec<(usize, Outcome)>, SimError>> =
                std::thread::scope(|scope| {
                    let shared = &shared;
                    let handles: Vec<_> = (0..jobs)
                        .map(|w| scope.spawn(move || worker_loop_batched(shared, units, w, jobs)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("injection worker panicked"))
                        .collect()
                });
            results.into_iter().collect::<Result<Vec<_>, _>>()?
        }
        None if jobs == 1 => vec![worker_loop(&shared, 0, 1)?],
        None => {
            let results: Vec<Result<Vec<(usize, Outcome)>, SimError>> =
                std::thread::scope(|scope| {
                    let shared = &shared;
                    let handles: Vec<_> = (0..jobs)
                        .map(|w| scope.spawn(move || worker_loop(shared, w, jobs)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("injection worker panicked"))
                        .collect()
                });
            // Results arrive in worker order, so the first `?` to fire is
            // the lowest-numbered worker's error — deterministic failure.
            results.into_iter().collect::<Result<Vec<_>, _>>()?
        }
    };
    if let (Some(replay_started), Some(prefix)) = (replay_started, shared.span_prefix.as_deref()) {
        hook.span(
            &SpanRecord::new(format!("{prefix}/replay"), 0, 1, replay_started)
                .tag("sites", shared.order.len()),
        );
    }
    let merge_started = H::SPANS.then(Instant::now);
    for batch in batches {
        for (i, o) in batch {
            outcomes[i] = o;
        }
    }
    if let (Some(merge_started), Some(prefix)) = (merge_started, shared.span_prefix.as_deref()) {
        hook.span(&SpanRecord::new(
            format!("{prefix}/merge"),
            0,
            2,
            merge_started,
        ));
    }
    stream_convergence(arch, workload, golden, sites, cfg, &outcomes, hook);
    Ok(outcomes)
}

/// One worker's traced batch: `(site index, outcome, trace)` triples.
type TracedBatch = Vec<(usize, Outcome, TraceRecord)>;

/// [`worker_loop`] with the flight recorder riding along: same stripe,
/// same device reuse, same metrics — each injection additionally yields
/// the [`TraceRecord`] of how its corruption propagated.
fn worker_loop_traced<H: TelemetryHook>(
    shared: &ReplayShared<'_, H>,
    golden_writes: &[GlobalWrite],
    worker: usize,
    jobs: usize,
) -> Result<TracedBatch, SimError> {
    let hook = shared.hook;
    let started = H::ENABLED.then(Instant::now);
    let mut gpu = Gpu::new(shared.arch.clone());
    let mut done = Vec::with_capacity(shared.order.len().div_ceil(jobs));
    let mut busy_us: u64 = 0;
    for &i in shared.order.iter().skip(worker).step_by(jobs) {
        let site = shared.sites[i];
        let rung = shared.ladder.nearest_indexed(site.cycle);
        let injection_started = H::ENABLED.then(Instant::now);
        let (outcome, record) = classify_traced_on(
            &mut gpu,
            shared.arch,
            shared.workload,
            shared.golden,
            golden_writes,
            site,
            shared.cfg.watchdog_factor,
            rung.map(|(_, ck)| ck),
            hook,
        )?;
        if let Some(injection_started) = injection_started {
            hook.observe(
                "campaign_injection_seconds",
                injection_started.elapsed().as_secs_f64(),
            );
            let outcome_label = outcome.as_str();
            hook.count(
                &format!("campaign_injections_total{{outcome=\"{outcome_label}\"}}"),
                1,
            );
            if outcome == Outcome::Hang {
                hook.count("campaign_hang_total", 1);
            }
            let kind_label = site.kind.as_str();
            hook.count(
                &format!("campaign_injections_by_kind_total{{kind=\"{kind_label}\"}}"),
                1,
            );
            let rung_label = match rung {
                Some((idx, _)) => idx.to_string(),
                None => "none".to_string(),
            };
            hook.count(
                &format!("campaign_rung_hits_total{{rung=\"{rung_label}\"}}"),
                1,
            );
        }
        if H::SPANS {
            if let (Some(injection_started), Some(prefix)) =
                (injection_started, shared.span_prefix.as_deref())
            {
                record_injection_span(
                    hook,
                    prefix,
                    injection_started,
                    i,
                    worker,
                    outcome,
                    site,
                    rung.map(|(idx, _)| idx),
                    &mut busy_us,
                );
            }
        }
        done.push((i, outcome, record));
    }
    if H::SPANS {
        if let (Some(started), Some(prefix)) = (started, shared.span_prefix.as_deref()) {
            record_worker_span(hook, prefix, started, worker, done.len(), busy_us);
        }
    }
    if let Some(started) = started {
        let seconds = started.elapsed().as_secs_f64();
        let per_second = if seconds > 0.0 {
            done.len() as f64 / seconds
        } else {
            0.0
        };
        hook.observe("campaign_worker_seconds", seconds);
        hook.count(
            &format!("campaign_worker_injections_total{{worker=\"{worker}\"}}"),
            done.len() as u64,
        );
        hook.gauge(
            &format!("campaign_worker_injections_per_second{{worker=\"{worker}\"}}"),
            per_second,
        );
    }
    Ok(done)
}

/// [`replay_sites`] with provenance recording: outcomes *and* per-site
/// [`TraceRecord`]s, both **in site order** and bit-identical at any job
/// count (the same determinism contract — the recorder is a passive
/// observer scattered back by site index exactly like the outcomes).
///
/// # Errors
///
/// Same as [`replay_sites`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_sites_traced<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    golden_writes: &[GlobalWrite],
    sites: &[FaultSite],
    cfg: CampaignConfig,
    ladder: &CheckpointLadder,
    hook: &H,
) -> Result<(Vec<Outcome>, Vec<TraceRecord>), SimError> {
    let jobs = cfg.threads.max(1).min(sites.len().max(1));
    let mut order: Vec<usize> = (0..sites.len()).collect();
    order.sort_by_key(|&i| (sites[i].cycle, i));
    if H::ENABLED {
        hook.gauge("campaign_workers", jobs as f64);
    }
    let shared = ReplayShared {
        arch,
        workload,
        golden,
        sites,
        order: &order,
        cfg,
        ladder,
        // The flight recorder wants the full propagation timeline, so a
        // traced replay never abandons the run early.
        early_exit: false,
        span_prefix: replay_span_prefix::<H>(arch, workload, sites),
        hook,
    };
    let mut outcomes = vec![Outcome::Masked; sites.len()];
    let placeholder = TraceRecord {
        site: FaultSite::new(simt_sim::Structure::VectorRegisterFile, 0, 0, 0, 0),
        injected_at: None,
        first_read: None,
        overwrite: None,
        divergence: None,
        taint_words: 0,
        taint_saturated: false,
        lds_banks: 0,
        first_reassert: None,
        reasserts: 0,
        control_corrupt: None,
        hang: None,
    };
    let mut records = vec![placeholder; sites.len()];
    let replay_started = H::SPANS.then(Instant::now);
    let batches: Vec<TracedBatch> = if jobs == 1 {
        vec![worker_loop_traced(&shared, golden_writes, 0, 1)?]
    } else {
        let results: Vec<Result<TracedBatch, SimError>> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..jobs)
                .map(|w| scope.spawn(move || worker_loop_traced(shared, golden_writes, w, jobs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("injection worker panicked"))
                .collect()
        });
        results.into_iter().collect::<Result<Vec<_>, _>>()?
    };
    if let (Some(replay_started), Some(prefix)) = (replay_started, shared.span_prefix.as_deref()) {
        hook.span(
            &SpanRecord::new(format!("{prefix}/replay"), 0, 1, replay_started)
                .tag("sites", shared.order.len()),
        );
    }
    let merge_started = H::SPANS.then(Instant::now);
    for batch in batches {
        for (i, o, rec) in batch {
            outcomes[i] = o;
            records[i] = rec;
        }
    }
    if let (Some(merge_started), Some(prefix)) = (merge_started, shared.span_prefix.as_deref()) {
        hook.span(&SpanRecord::new(
            format!("{prefix}/merge"),
            0,
            2,
            merge_started,
        ));
    }
    stream_convergence(arch, workload, golden, sites, cfg, &outcomes, hook);
    Ok((outcomes, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{golden_run, sample_sites};
    use gpu_archs::quadro_fx_5600;
    use gpu_workloads::VectorAdd;
    use grel_telemetry::{MetricsRegistry, NoopHook, RegistryHook};
    use simt_sim::Structure;

    fn cfg(n: u32, threads: usize) -> CampaignConfig {
        CampaignConfig {
            injections: n,
            threads,
            ..CampaignConfig::quick(11)
        }
    }

    fn outcomes_at(jobs: usize) -> Vec<Outcome> {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 11);
        let golden = golden_run(&arch, &w).unwrap();
        let c = cfg(24, jobs);
        let sites = sample_sites(
            &arch,
            Structure::VectorRegisterFile,
            golden.cycles,
            c.injections,
            c.seed,
        );
        let ladder = CheckpointLadder::build(&arch, &w, &golden, &c).unwrap();
        replay_sites(&arch, &w, &golden, &sites, c, &ladder, None, &NoopHook).unwrap()
    }

    #[test]
    fn outcome_order_is_job_count_invariant() {
        let one = outcomes_at(1);
        for jobs in [2, 3, 5, 8] {
            assert_eq!(one, outcomes_at(jobs), "jobs = {jobs}");
        }
    }

    #[test]
    fn oversubscribed_pool_clamps_to_site_count() {
        // 64 workers over 6 sites must not panic or drop outcomes.
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 11);
        let golden = golden_run(&arch, &w).unwrap();
        let c = cfg(6, 64);
        let sites = sample_sites(
            &arch,
            Structure::VectorRegisterFile,
            golden.cycles,
            c.injections,
            c.seed,
        );
        let ladder = CheckpointLadder::build(&arch, &w, &golden, &c).unwrap();
        let out = replay_sites(&arch, &w, &golden, &sites, c, &ladder, None, &NoopHook).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn per_worker_metrics_cover_every_injection() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 11);
        let golden = golden_run(&arch, &w).unwrap();
        let mut c = cfg(12, 3);
        // Scalar replay only: batching would merge these few transient
        // sites into one unit and clamp the pool to a single worker.
        c.batch = false;
        let sites = sample_sites(
            &arch,
            Structure::VectorRegisterFile,
            golden.cycles,
            c.injections,
            c.seed,
        );
        let ladder = CheckpointLadder::build(&arch, &w, &golden, &c).unwrap();
        let reg = MetricsRegistry::new();
        let hook = RegistryHook::new(&reg);
        replay_sites(&arch, &w, &golden, &sites, c, &ladder, None, &hook).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("campaign_workers"), Some(3.0));
        let per_worker: u64 = snap
            .counters()
            .filter(|(n, _)| n.starts_with("campaign_worker_injections_total"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_worker, 12, "every injection belongs to one worker");
        assert_eq!(
            snap.histogram("campaign_worker_seconds").unwrap().count(),
            3,
            "one wall-time sample per worker"
        );
    }
}
