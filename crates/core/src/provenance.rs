//! Fault-propagation provenance: the analysis layer over the simulator's
//! flight recorder ([`simt_sim::TraceObserver`]).
//!
//! A campaign tally says *what* happened (Masked/SDC/DUE rates); this
//! module says *why*. For every injection it distills a [`Provenance`]
//! record — how long the corrupted word survived before its first
//! architected read (or the overwrite that masked it), how far the
//! corruption spread, and how many cycles passed before the output
//! stream first diverged from the golden run — and aggregates the
//! records into AVF **attribution heatmaps** (SDC rate per register-file
//! word region and per LDS bank) plus log2-bucketed latency histograms.
//!
//! Recording is strictly observational: outcomes and tallies are
//! bit-identical with and without it, and the aggregates inherit the
//! runner's determinism contract (site-order merge, invariant under the
//! worker count).

use crate::campaign::{
    campaign_margin, control_population_bits, golden_run, sample_model_sites, CampaignConfig,
    CampaignResult, CheckpointLadder, GoldenRun, Outcome, Tally,
};
use crate::runner::replay_sites_traced;
use crate::stats::fault_population;
use gpu_workloads::Workload;
use grel_telemetry::{Event, TelemetryHook};
use serde::{Deserialize, Serialize};
use simt_sim::{
    ArchConfig, FaultModelKind, FaultSite, GlobalWrite, GlobalWriteLog, Gpu, SimError, Structure,
    TraceRecord,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Number of equal word regions the register file is folded into for the
/// attribution heatmap.
pub const RF_REGIONS: usize = 16;

/// Why a masked injection was masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MaskingReason {
    /// The corrupted word was cleanly overwritten before any read.
    Overwritten,
    /// The corrupted word was never read (dead or unallocated state).
    NeverRead,
    /// The corruption was read but the program output still matched the
    /// golden run (logical masking downstream of the read).
    LogicallyMasked,
}

impl MaskingReason {
    /// Canonical label used in telemetry and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            MaskingReason::Overwritten => "overwritten",
            MaskingReason::NeverRead => "never-read",
            MaskingReason::LogicallyMasked => "logically-masked",
        }
    }

    /// All reasons, in reporting order.
    pub const ALL: [MaskingReason; 3] = [
        MaskingReason::Overwritten,
        MaskingReason::NeverRead,
        MaskingReason::LogicallyMasked,
    ];
}

impl std::fmt::Display for MaskingReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Root-cause attribution of a DUE or hang: the mechanism that turned the
/// injection into a failure, mirroring how [`MaskingReason`] explains a
/// masked run. Each variant carries the absolute cycle of the causal
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// A stuck-at cell first re-asserted over an architected write at this
    /// cycle — the corruption could never be flushed.
    StuckReassertion(u64),
    /// Live scheduler/mask/scoreboard/barrier state was corrupted at this
    /// cycle.
    ControlCorruption(u64),
    /// The watchdog expired at this cycle with warps parked — a barrier or
    /// scheduler deadlock.
    Deadlock(u64),
}

impl FailureCause {
    /// Reporting labels, aligned with [`FailureCause::index`].
    pub const LABELS: [&'static str; 3] = ["stuck-reassert", "control-corrupt", "deadlock"];

    /// Canonical label used in telemetry and reports.
    pub fn as_str(&self) -> &'static str {
        Self::LABELS[self.index()]
    }

    /// Position within [`FailureCause::LABELS`] (for aggregate counters).
    pub fn index(&self) -> usize {
        match self {
            FailureCause::StuckReassertion(_) => 0,
            FailureCause::ControlCorruption(_) => 1,
            FailureCause::Deadlock(_) => 2,
        }
    }

    /// Absolute cycle of the causal event.
    pub fn cycle(&self) -> u64 {
        match self {
            FailureCause::StuckReassertion(c)
            | FailureCause::ControlCorruption(c)
            | FailureCause::Deadlock(c) => *c,
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The distilled provenance of one injection: outcome plus propagation
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// The injected fault site.
    pub site: FaultSite,
    /// The campaign classification of this injection.
    pub outcome: Outcome,
    /// Cycles from the flip to the first architected read of the
    /// corrupted word (`None` if it was overwritten or never read).
    pub first_read_latency: Option<u64>,
    /// Cycles from the flip to the first global store that diverged from
    /// the golden stream (`None` when the stream never diverged — masked
    /// runs, DUEs that die before storing, or SDCs visible only in the
    /// final read-back).
    pub cycles_to_divergence: Option<u64>,
    /// Distinct words the corruption reached (including the flip target).
    pub taint_words: u32,
    /// Whether taint tracking hit [`simt_sim::TAINT_CAP`].
    pub taint_saturated: bool,
    /// Distinct LDS banks among the tainted local-memory words.
    pub lds_banks: u32,
    /// Why a masked run was masked (`None` for SDC/DUE).
    pub masking: Option<MaskingReason>,
    /// Root cause of a DUE or hang (`None` for masked runs and for
    /// transient faults whose only causal event is the flip itself).
    pub cause: Option<FailureCause>,
}

impl Provenance {
    /// Builds the provenance of one injection from its classification
    /// and flight-recorder output.
    pub fn from_trace(outcome: Outcome, rec: &TraceRecord) -> Self {
        let latency = |end: Option<u64>| match (rec.injected_at, end) {
            (Some(t0), Some(t1)) => Some(t1.saturating_sub(t0)),
            _ => None,
        };
        let masking = (outcome == Outcome::Masked).then(|| {
            if rec.first_read.is_some() {
                MaskingReason::LogicallyMasked
            } else if rec.overwrite.is_some() {
                MaskingReason::Overwritten
            } else {
                MaskingReason::NeverRead
            }
        });
        // Root cause of a failure: earliest causal event wins, so a hang
        // downstream of a control corruption is attributed to the
        // corruption, not to the watchdog that finally noticed it.
        let cause = if outcome == Outcome::Masked {
            None
        } else if let Some(c) = rec.control_corrupt {
            Some(FailureCause::ControlCorruption(c))
        } else if let Some(c) = rec.first_reassert {
            Some(FailureCause::StuckReassertion(c))
        } else {
            rec.hang.map(FailureCause::Deadlock)
        };
        Provenance {
            site: rec.site,
            outcome,
            first_read_latency: latency(rec.first_read),
            cycles_to_divergence: latency(rec.divergence),
            taint_words: rec.taint_words,
            taint_saturated: rec.taint_saturated,
            lds_banks: rec.lds_banks,
            masking,
            cause,
        }
    }
}

/// Outcome counters of one spatial cell (RF word region or LDS bank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellStat {
    /// Injections landing in the cell.
    pub injections: u64,
    /// SDC outcomes among them.
    pub sdc: u64,
    /// DUE outcomes among them.
    pub due: u64,
    /// Hang outcomes among them.
    pub hang: u64,
}

impl CellStat {
    /// SDC rate of the cell (0 when empty).
    pub fn sdc_rate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.sdc as f64 / self.injections as f64
        }
    }
}

/// Campaign-wide roll-up of [`Provenance`] records: the data behind the
/// attribution heatmap and the propagation histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceAggregate {
    /// Per-region stats over the structure's word space ([`RF_REGIONS`]
    /// equal slices; populated for register-file campaigns).
    pub rf_regions: Vec<CellStat>,
    /// Per-LDS-bank stats (populated for local-memory campaigns).
    pub lds_banks: Vec<CellStat>,
    /// `log2` histogram of cycles-to-divergence: bucket `b` counts
    /// injections with divergence latency in `[2^(b-1), 2^b)`.
    pub divergence_hist: Vec<u64>,
    /// `log2` histogram of first-read latency, same bucketing.
    pub first_read_hist: Vec<u64>,
    /// Masked runs per masking reason, in [`MaskingReason::ALL`] order.
    pub masking: [u64; 3],
    /// Failures per root cause, in [`FailureCause::LABELS`] order.
    pub causes: [u64; 3],
    /// Sum of taint breadths over all injections.
    pub taint_words_total: u64,
    /// Injections whose taint set saturated.
    pub taint_saturated_total: u64,
}

/// The log2 bucket of a latency: 0 for 0 cycles, otherwise the position
/// of the highest set bit plus one (bucket `b` covers `[2^(b-1), 2^b)`).
pub fn log2_bucket(x: u64) -> usize {
    (u64::BITS - x.leading_zeros()) as usize
}

fn bump(hist: &mut Vec<u64>, bucket: usize) {
    if hist.len() <= bucket {
        hist.resize(bucket + 1, 0);
    }
    hist[bucket] += 1;
}

impl ProvenanceAggregate {
    /// Rolls the per-injection records of one campaign up into heatmap
    /// cells and histograms. `structure` is the campaign's injected
    /// structure; `arch` supplies the word counts and bank geometry.
    pub fn from_records(arch: &ArchConfig, structure: Structure, records: &[Provenance]) -> Self {
        let words = match structure {
            Structure::VectorRegisterFile => arch.rf_words_per_sm(),
            Structure::LocalMemory => arch.lds_words_per_sm(),
            Structure::ScalarRegisterFile => arch.srf_words_per_sm(),
        } as u64;
        let mut agg = ProvenanceAggregate::default();
        if structure == Structure::LocalMemory {
            agg.lds_banks = vec![CellStat::default(); arch.lds_banks.max(1) as usize];
        } else {
            agg.rf_regions = vec![CellStat::default(); RF_REGIONS];
        }
        for p in records {
            let cell = if structure == Structure::LocalMemory {
                let bank = (p.site.word as u64 % arch.lds_banks.max(1) as u64) as usize;
                &mut agg.lds_banks[bank]
            } else {
                let region = ((p.site.word as u64 * RF_REGIONS as u64) / words.max(1)) as usize;
                &mut agg.rf_regions[region.min(RF_REGIONS - 1)]
            };
            cell.injections += 1;
            match p.outcome {
                Outcome::Sdc => cell.sdc += 1,
                Outcome::Due => cell.due += 1,
                Outcome::Hang => cell.hang += 1,
                Outcome::Masked => {}
            }
            if let Some(d) = p.cycles_to_divergence {
                bump(&mut agg.divergence_hist, log2_bucket(d));
            }
            if let Some(r) = p.first_read_latency {
                bump(&mut agg.first_read_hist, log2_bucket(r));
            }
            if let Some(m) = p.masking {
                let idx = MaskingReason::ALL.iter().position(|x| *x == m).unwrap();
                agg.masking[idx] += 1;
            }
            if let Some(c) = p.cause {
                agg.causes[c.index()] += 1;
            }
            agg.taint_words_total += p.taint_words as u64;
            agg.taint_saturated_total += p.taint_saturated as u64;
        }
        agg
    }

    /// Publishes the aggregate as `provenance_*` counters (labels are
    /// zero-padded so lexicographic metric order equals numeric order).
    pub fn emit<H: TelemetryHook>(&self, hook: &H) {
        if !H::ENABLED {
            return;
        }
        for (i, c) in self.rf_regions.iter().enumerate() {
            if c.injections == 0 {
                continue;
            }
            hook.count(
                &format!("provenance_rf_region_injections_total{{region=\"{i:02}\"}}"),
                c.injections,
            );
            if c.sdc > 0 {
                hook.count(
                    &format!("provenance_rf_region_sdc_total{{region=\"{i:02}\"}}"),
                    c.sdc,
                );
            }
        }
        for (i, c) in self.lds_banks.iter().enumerate() {
            if c.injections == 0 {
                continue;
            }
            hook.count(
                &format!("provenance_lds_bank_injections_total{{bank=\"{i:02}\"}}"),
                c.injections,
            );
            if c.sdc > 0 {
                hook.count(
                    &format!("provenance_lds_bank_sdc_total{{bank=\"{i:02}\"}}"),
                    c.sdc,
                );
            }
        }
        for (b, &n) in self.divergence_hist.iter().enumerate() {
            if n > 0 {
                hook.count(
                    &format!("provenance_divergence_cycles_total{{bucket=\"{b:02}\"}}"),
                    n,
                );
            }
        }
        for (b, &n) in self.first_read_hist.iter().enumerate() {
            if n > 0 {
                hook.count(
                    &format!("provenance_first_read_cycles_total{{bucket=\"{b:02}\"}}"),
                    n,
                );
            }
        }
        for (reason, &n) in MaskingReason::ALL.iter().zip(&self.masking) {
            if n > 0 {
                hook.count(
                    &format!("provenance_masking_total{{reason=\"{reason}\"}}"),
                    n,
                );
            }
        }
        for (cause, &n) in FailureCause::LABELS.iter().zip(&self.causes) {
            if n > 0 {
                hook.count(&format!("provenance_cause_total{{cause=\"{cause}\"}}"), n);
            }
        }
        if self.taint_words_total > 0 {
            hook.count("provenance_taint_words_total", self.taint_words_total);
        }
        if self.taint_saturated_total > 0 {
            hook.count(
                "provenance_taint_saturated_total",
                self.taint_saturated_total,
            );
        }
    }

    /// Merges another aggregate into this one (cells align index-wise;
    /// shorter vectors grow as needed).
    pub fn merge(&mut self, other: &ProvenanceAggregate) {
        fn merge_cells(into: &mut Vec<CellStat>, from: &[CellStat]) {
            if into.len() < from.len() {
                into.resize(from.len(), CellStat::default());
            }
            for (a, b) in into.iter_mut().zip(from) {
                a.injections += b.injections;
                a.sdc += b.sdc;
                a.due += b.due;
                a.hang += b.hang;
            }
        }
        merge_cells(&mut self.rf_regions, &other.rf_regions);
        merge_cells(&mut self.lds_banks, &other.lds_banks);
        for (b, &n) in other.divergence_hist.iter().enumerate() {
            if n > 0 {
                bump(&mut self.divergence_hist, b);
                *self.divergence_hist.last_mut().unwrap() -= 1;
                self.divergence_hist[b] += n;
            }
        }
        for (b, &n) in other.first_read_hist.iter().enumerate() {
            if n > 0 {
                bump(&mut self.first_read_hist, b);
                *self.first_read_hist.last_mut().unwrap() -= 1;
                self.first_read_hist[b] += n;
            }
        }
        for (a, b) in self.masking.iter_mut().zip(&other.masking) {
            *a += b;
        }
        for (a, b) in self.causes.iter_mut().zip(&other.causes) {
            *a += b;
        }
        self.taint_words_total += other.taint_words_total;
        self.taint_saturated_total += other.taint_saturated_total;
    }
}

/// Captures the golden run's ordered global-store stream — the
/// divergence reference shared by every traced replay of the workload.
///
/// # Errors
///
/// Propagates a fault-free launch failure.
pub fn golden_write_log(
    arch: &ArchConfig,
    workload: &dyn Workload,
) -> Result<Vec<GlobalWrite>, SimError> {
    let mut gpu = Gpu::new(arch.clone());
    let mut log = GlobalWriteLog::default();
    workload.run(&mut gpu, &mut log)?;
    Ok(log.into_writes())
}

/// [`crate::campaign::run_campaign_with_ladder_hooked`] with the flight
/// recorder enabled: same sites, same outcomes, same tally — plus one
/// [`Provenance`] record per injection (site order) and the campaign
/// [`ProvenanceAggregate`].
///
/// Per-injection `injection.trace` events and `provenance_*` metrics are
/// emitted from the calling thread after the deterministic site-order
/// merge, so hooked output is invariant under the worker count.
///
/// # Errors
///
/// Propagates replay failures that are not fault classifications.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_with_provenance_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    golden: &GoldenRun,
    golden_writes: &[GlobalWrite],
    ladder: &CheckpointLadder,
    hook: &H,
) -> Result<(CampaignResult, Vec<Provenance>, ProvenanceAggregate), SimError> {
    let started = H::ENABLED.then(Instant::now);
    let sites = sample_model_sites(
        arch,
        structure,
        cfg.fault_model,
        golden.cycles,
        cfg.injections,
        cfg.seed,
    );
    let (outcomes, records) = replay_sites_traced(
        arch,
        workload,
        golden,
        golden_writes,
        &sites,
        cfg,
        ladder,
        hook,
    )?;
    let mut tally = Tally::default();
    let mut provenance = Vec::with_capacity(outcomes.len());
    for (o, r) in outcomes.iter().zip(&records) {
        tally.add(*o);
        provenance.push(Provenance::from_trace(*o, r));
    }
    let aggregate = ProvenanceAggregate::from_records(arch, structure, &provenance);
    let structure_bits = match cfg.fault_model {
        FaultModelKind::Control => control_population_bits(arch),
        _ => {
            (match structure {
                Structure::VectorRegisterFile => arch.rf_words_per_sm(),
                Structure::LocalMemory => arch.lds_words_per_sm(),
                Structure::ScalarRegisterFile => arch.srf_words_per_sm(),
            }) as u64
                * 32
                * arch.num_sms as u64
        }
    };
    let population = fault_population(structure_bits, golden.cycles);
    let result = CampaignResult {
        structure,
        tally,
        golden_cycles: golden.cycles,
        population,
        margin_99: campaign_margin(population, tally.total()),
    };
    if let Some(started) = started {
        for p in &provenance {
            let ev = Event::new("injection.trace")
                .field("workload", workload.name())
                .field("device", arch.name.as_str())
                .field("structure", p.site.structure.to_string())
                .field("sm", p.site.sm)
                .field("word", p.site.word)
                .field("bit", u32::from(p.site.bit))
                .field("cycle", p.site.cycle)
                .field("kind", p.site.kind.as_str())
                .field("outcome", p.outcome.as_str())
                .field_opt("first_read_latency", p.first_read_latency)
                .field_opt("cycles_to_divergence", p.cycles_to_divergence)
                .field("taint_words", u64::from(p.taint_words))
                .field("taint_saturated", p.taint_saturated)
                .field("lds_banks", u64::from(p.lds_banks))
                .field_opt("masking", p.masking.map(|m| m.as_str()))
                .field_opt("cause", p.cause.map(|c| c.as_str()))
                .field_opt("cause_cycle", p.cause.map(|c| c.cycle()));
            hook.event(&ev);
        }
        aggregate.emit(hook);
        let seconds = started.elapsed().as_secs_f64();
        let per_second = if seconds > 0.0 {
            tally.total() as f64 / seconds
        } else {
            0.0
        };
        hook.observe("campaign_seconds", seconds);
        hook.gauge("campaign_injections_per_second", per_second);
        hook.event(
            &Event::new("campaign.done")
                .field("workload", workload.name())
                .field("device", arch.name.as_str())
                .field("structure", structure.to_string())
                .field("fault_kind", cfg.fault_model.as_str())
                .field("injections", tally.total())
                .field("masked", tally.masked)
                .field("sdc", tally.sdc)
                .field("due", tally.due)
                .field("hang", tally.hang)
                .field("avf", result.avf())
                .field("golden_cycles", golden.cycles)
                .field("ladder_rungs", ladder.len())
                .field("seconds", seconds)
                .field("injections_per_second", per_second),
        );
    }
    Ok((result, provenance, aggregate))
}

/// Parses a fault site from the `sm:struct:word:bit:cycle[:kind]` CLI
/// syntax, where `struct` is one of `rf`, `lds`, `srf` and the optional
/// `kind` is `transient` (the default), `stuck0`, `stuck1` or
/// `ctrl-<sched|mask|sboard|barrier>`.
///
/// Delegates to [`FaultSite`]'s `FromStr`, so the accepted grammar is
/// exactly [`FaultSite::to_site_string`]'s output — every kind
/// round-trips.
///
/// # Errors
///
/// Returns a human-readable message naming the malformed component.
///
/// # Example
/// ```
/// use grel_core::provenance::parse_site;
/// use simt_sim::{FaultKind, Structure};
/// let s = parse_site("3:rf:128:17:40000").unwrap();
/// assert_eq!(s.structure, Structure::VectorRegisterFile);
/// assert_eq!(s.word, 128);
/// assert_eq!(s.kind, FaultKind::TransientFlip);
/// let p = parse_site("0:lds:9:4:700:stuck1").unwrap();
/// assert_eq!(p.kind, FaultKind::StuckAt1);
/// assert!(parse_site("3:l1:0:0:0").is_err());
/// ```
pub fn parse_site(s: &str) -> Result<FaultSite, String> {
    s.parse()
}

/// Everything `repro trace` needs to narrate one injection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleTrace {
    /// The traced site.
    pub site: FaultSite,
    /// Fault-free total cycles of the workload.
    pub golden_cycles: u64,
    /// Distilled provenance of the replay.
    pub provenance: Provenance,
}

/// Replays one injection from cycle zero with the flight recorder on and
/// returns its provenance. The golden run and its write log are captured
/// internally — this is the one-shot path behind `repro trace`.
///
/// # Errors
///
/// Propagates a golden-run failure or a non-DUE replay failure.
pub fn trace_one(
    arch: &ArchConfig,
    workload: &dyn Workload,
    site: FaultSite,
    watchdog_factor: u64,
) -> Result<SingleTrace, SimError> {
    let golden = golden_run(arch, workload)?;
    let golden_writes = golden_write_log(arch, workload)?;
    let mut gpu = Gpu::new(arch.clone());
    let (outcome, record) = crate::campaign::classify_traced_on(
        &mut gpu,
        arch,
        workload,
        &golden,
        &golden_writes,
        site,
        watchdog_factor,
        None,
        &grel_telemetry::NoopHook,
    )?;
    Ok(SingleTrace {
        site,
        golden_cycles: golden.cycles,
        provenance: Provenance::from_trace(outcome, &record),
    })
}

impl SingleTrace {
    /// Renders the propagation narrative shown by `repro trace`:
    /// flip → first read / overwrite → divergence or masking reason.
    pub fn narrative(&self) -> String {
        let p = &self.provenance;
        let mut out = String::new();
        let _ = writeln!(out, "injection: {}", self.site);
        let _ = writeln!(out, "golden run: {} cycles fault-free", self.golden_cycles);
        if self.site.cycle >= self.golden_cycles {
            let _ = writeln!(
                out,
                "the fault cycle lies at or beyond the fault-free end of execution;"
            );
            let _ = writeln!(
                out,
                "the flip never occurred and the run is trivially masked."
            );
            let _ = writeln!(out, "outcome: {}", p.outcome);
            return out;
        }
        match (p.first_read_latency, p.masking) {
            (Some(l), _) => {
                let _ = writeln!(
                    out,
                    "first architected read of the corrupted word: {} cycle(s) after the flip",
                    l
                );
            }
            (None, Some(MaskingReason::Overwritten)) => {
                let _ = writeln!(
                    out,
                    "the corrupted word was cleanly overwritten before any read — the flip died in place"
                );
            }
            (None, _) => {
                let _ = writeln!(
                    out,
                    "the corrupted word was never read for the rest of the run (dead or unallocated state)"
                );
            }
        }
        let _ = writeln!(
            out,
            "taint spread: {} word(s){}{}",
            p.taint_words,
            if p.lds_banks > 0 {
                format!(" across {} LDS bank(s)", p.lds_banks)
            } else {
                String::new()
            },
            if p.taint_saturated {
                " (saturated: spread exceeded the tracking cap)"
            } else {
                ""
            }
        );
        match p.cycles_to_divergence {
            Some(d) => {
                let _ = writeln!(
                    out,
                    "output stream diverged from the golden run {} cycle(s) after the flip",
                    d
                );
            }
            None => match p.outcome {
                Outcome::Masked => {
                    let _ = writeln!(out, "the output stream never diverged from the golden run");
                }
                Outcome::Sdc => {
                    let _ = writeln!(
                        out,
                        "no store-stream divergence was observed; the corruption surfaced only in the final output read-back"
                    );
                }
                Outcome::Due => {
                    let _ = writeln!(
                        out,
                        "the run was cut short by a detected error before any store diverged"
                    );
                }
                Outcome::Hang => {
                    let _ = writeln!(
                        out,
                        "the run never terminated; the watchdog cut it off before any store diverged"
                    );
                }
            },
        }
        match p.cause {
            Some(FailureCause::StuckReassertion(c)) => {
                let _ = writeln!(
                    out,
                    "root cause: the stuck cell first re-asserted over an architected write at cycle {c}"
                );
            }
            Some(FailureCause::ControlCorruption(c)) => {
                let _ = writeln!(
                    out,
                    "root cause: live control state (scheduler/mask/scoreboard/barrier) was corrupted at cycle {c}"
                );
            }
            Some(FailureCause::Deadlock(c)) => {
                let _ = writeln!(
                    out,
                    "root cause: the watchdog expired at cycle {c} with warps still parked (deadlock)"
                );
            }
            None => {}
        }
        match p.masking {
            Some(m) => {
                let _ = writeln!(out, "outcome: {} (reason: {})", p.outcome, m);
            }
            None => {
                let _ = writeln!(out, "outcome: {}", p.outcome);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::quadro_fx_5600;
    use gpu_workloads::VectorAdd;
    use simt_sim::FaultKind;

    fn rec(site: FaultSite) -> TraceRecord {
        TraceRecord {
            site,
            injected_at: Some(site.cycle),
            first_read: None,
            overwrite: None,
            divergence: None,
            taint_words: 1,
            taint_saturated: false,
            lds_banks: 0,
            first_reassert: None,
            reasserts: 0,
            control_corrupt: None,
            hang: None,
        }
    }

    fn rf_site(word: u32, cycle: u64) -> FaultSite {
        FaultSite::new(Structure::VectorRegisterFile, 0, word, 0, cycle)
    }

    #[test]
    fn masking_reason_classification() {
        let s = rf_site(4, 100);
        let mut never = rec(s);
        never.taint_words = 1;
        assert_eq!(
            Provenance::from_trace(Outcome::Masked, &never).masking,
            Some(MaskingReason::NeverRead)
        );
        let mut over = rec(s);
        over.overwrite = Some(150);
        assert_eq!(
            Provenance::from_trace(Outcome::Masked, &over).masking,
            Some(MaskingReason::Overwritten)
        );
        let mut logical = rec(s);
        logical.first_read = Some(130);
        let p = Provenance::from_trace(Outcome::Masked, &logical);
        assert_eq!(p.masking, Some(MaskingReason::LogicallyMasked));
        assert_eq!(p.first_read_latency, Some(30));
        assert_eq!(Provenance::from_trace(Outcome::Sdc, &logical).masking, None);
    }

    #[test]
    fn failure_cause_attribution() {
        use simt_sim::ControlTarget;
        let s = rf_site(4, 100);

        // A stuck-at DUE is attributed to the first re-assertion.
        let mut stuck = rec(s.with_kind(FaultKind::StuckAt0));
        stuck.first_reassert = Some(140);
        stuck.reasserts = 3;
        let p = Provenance::from_trace(Outcome::Due, &stuck);
        assert_eq!(p.cause, Some(FailureCause::StuckReassertion(140)));
        assert_eq!(p.cause.unwrap().cycle(), 140);

        // A control-fault hang is attributed to the corruption, not the
        // watchdog that eventually noticed the deadlock.
        let mut ctrl = rec(s.with_kind(FaultKind::Control(ControlTarget::BarrierCounter)));
        ctrl.control_corrupt = Some(100);
        ctrl.hang = Some(90_000);
        let p = Provenance::from_trace(Outcome::Hang, &ctrl);
        assert_eq!(p.cause, Some(FailureCause::ControlCorruption(100)));

        // A hang with no earlier causal event falls back to the deadlock.
        let mut hung = rec(s);
        hung.hang = Some(90_000);
        let p = Provenance::from_trace(Outcome::Hang, &hung);
        assert_eq!(p.cause, Some(FailureCause::Deadlock(90_000)));

        // Masked runs never carry a cause, whatever was recorded.
        let p = Provenance::from_trace(Outcome::Masked, &stuck);
        assert_eq!(p.cause, None);

        // Plain transient SDCs have no causal event beyond the flip.
        let p = Provenance::from_trace(Outcome::Sdc, &rec(s));
        assert_eq!(p.cause, None);
    }

    #[test]
    fn aggregate_counts_hangs_and_causes() {
        let arch = quadro_fx_5600();
        let mut hung = rec(rf_site(0, 10));
        hung.hang = Some(50_000);
        let h = Provenance::from_trace(Outcome::Hang, &hung);
        let mut stuck = rec(rf_site(1, 10).with_kind(FaultKind::StuckAt1));
        stuck.first_reassert = Some(20);
        let d = Provenance::from_trace(Outcome::Due, &stuck);
        let agg = ProvenanceAggregate::from_records(&arch, Structure::VectorRegisterFile, &[h, d]);
        assert_eq!(agg.rf_regions[0].hang, 1);
        assert_eq!(agg.rf_regions[0].due, 1);
        assert_eq!(agg.causes, [1, 0, 1], "stuck-reassert and deadlock");
        let mut merged =
            ProvenanceAggregate::from_records(&arch, Structure::VectorRegisterFile, &[h]);
        merged.merge(&ProvenanceAggregate::from_records(
            &arch,
            Structure::VectorRegisterFile,
            &[d],
        ));
        assert_eq!(merged, agg);
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(1024), 11);
    }

    #[test]
    fn aggregate_attributes_regions_and_histograms() {
        let arch = quadro_fx_5600();
        let words = arch.rf_words_per_sm() as u64;
        // One SDC in the first region, one masked (never read) in the last.
        let first = Provenance {
            cycles_to_divergence: Some(8),
            ..Provenance::from_trace(Outcome::Sdc, &rec(rf_site(0, 10)))
        };
        let last_word = (words - 1) as u32;
        let last = Provenance::from_trace(Outcome::Masked, &rec(rf_site(last_word, 10)));
        let agg =
            ProvenanceAggregate::from_records(&arch, Structure::VectorRegisterFile, &[first, last]);
        assert_eq!(agg.rf_regions.len(), RF_REGIONS);
        assert_eq!(agg.rf_regions[0].injections, 1);
        assert_eq!(agg.rf_regions[0].sdc, 1);
        assert_eq!(agg.rf_regions[RF_REGIONS - 1].injections, 1);
        assert_eq!(agg.rf_regions[RF_REGIONS - 1].sdc, 0);
        assert_eq!(agg.divergence_hist[log2_bucket(8)], 1);
        assert_eq!(agg.masking[1], 1, "never-read count");
        assert!(agg.lds_banks.is_empty());
    }

    #[test]
    fn aggregate_merge_is_additive() {
        let arch = quadro_fx_5600();
        let a = Provenance::from_trace(Outcome::Sdc, &rec(rf_site(0, 10)));
        let b = Provenance::from_trace(Outcome::Masked, &rec(rf_site(1, 20)));
        let both = ProvenanceAggregate::from_records(&arch, Structure::VectorRegisterFile, &[a, b]);
        let mut merged =
            ProvenanceAggregate::from_records(&arch, Structure::VectorRegisterFile, &[a]);
        merged.merge(&ProvenanceAggregate::from_records(
            &arch,
            Structure::VectorRegisterFile,
            &[b],
        ));
        assert_eq!(merged, both);
    }

    #[test]
    fn parse_site_round_trip_and_errors() {
        let s = parse_site("2:lds:64:31:900").unwrap();
        assert_eq!(s.structure, Structure::LocalMemory);
        assert_eq!(s.sm, 2);
        assert_eq!(s.word, 64);
        assert_eq!(s.bit, 31);
        assert_eq!(s.cycle, 900);
        assert!(parse_site("1:rf:0:32:5").is_err(), "bit out of range");
        assert!(parse_site("1:rf:0:0").is_err(), "too few fields");
        assert!(parse_site("1:tex:0:0:5").is_err(), "unknown structure");
        assert!(parse_site("x:rf:0:0:5").is_err(), "non-numeric sm");
        assert!(parse_site("1:rf:0:0:5:melty").is_err(), "unknown kind");
    }

    #[test]
    fn parse_site_round_trips_every_kind() {
        use simt_sim::ControlTarget;
        let kinds = [
            FaultKind::TransientFlip,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Control(ControlTarget::SchedulerSlot),
            FaultKind::Control(ControlTarget::ActiveMask),
            FaultKind::Control(ControlTarget::Scoreboard),
            FaultKind::Control(ControlTarget::BarrierCounter),
        ];
        for kind in kinds {
            let site = rf_site(12, 3000).with_kind(kind);
            let parsed = parse_site(&site.to_site_string()).unwrap();
            assert_eq!(parsed, site, "round-trip of kind {}", kind.as_str());
        }
    }

    #[test]
    fn trace_one_narrates_a_real_injection() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 7);
        let golden = golden_run(&arch, &w).unwrap();
        let site = rf_site(0, golden.cycles / 2);
        let t = trace_one(&arch, &w, site, 4).unwrap();
        let text = t.narrative();
        assert!(text.contains("injection: register file sm0 word 0"));
        assert!(text.contains("outcome: "));
        // A site beyond the end of execution narrates the trivial mask.
        let beyond = rf_site(0, golden.cycles + 10);
        let t = trace_one(&arch, &w, beyond, 4).unwrap();
        assert!(t.narrative().contains("never occurred"));
        assert_eq!(t.provenance.outcome, Outcome::Masked);
    }
}
