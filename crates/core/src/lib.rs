//! # grel-core — GPU reliability evaluation framework
//!
//! The reproduction of the ISPASS 2017 paper's contribution: a unified
//! GUFI/SIFI-style toolkit that measures the soft-error vulnerability of
//! GPU storage structures with two methodologies and correlates it with
//! performance:
//!
//! * [`campaign`] — statistical **fault injection**: golden run, uniform
//!   `(SM, word, bit, cycle)` site sampling, parallel replays resumed
//!   from a checkpoint ladder, and masked/SDC/DUE classification;
//! * [`ace`] — **ACE analysis**: single-pass write→last-read lifetime
//!   tracking over the physical register files and local memory, plus
//!   time-weighted occupancy (the red line of Fig. 1/2);
//! * [`stats`] — the Leveugle sample-size model behind the paper's
//!   "2,000 injections → ±2.88 % @ 99 %" footnote, plus Pearson
//!   correlation for the AVF↔occupancy finding;
//! * [`mod@epf`] — FIT/EIT/**EPF** (Executions Per Failure), the combined
//!   reliability-performance metric of Fig. 3;
//! * [`study`] — the full cross-product driver that regenerates the
//!   series behind every figure of the paper;
//! * [`provenance`] — the **fault-propagation flight recorder**: per-
//!   injection first-read/overwrite/divergence timelines, bounded taint
//!   sets, masking reasons and AVF attribution heatmaps that explain why
//!   a structure's AVF is high or low;
//! * [`convergence`] — **streaming convergence monitoring**: running
//!   finite-population intervals and injections-to-target-margin
//!   projections emitted as `campaign.convergence` events while a
//!   campaign is still in flight;
//! * [`sampling`] — **adaptive stratified sampling**: partition the
//!   site space into oracle-liveness / cycle-quartile / bit-half
//!   strata, pilot each, Neyman-allocate the rest in rounds, and stop
//!   at a caller-chosen post-stratified margin instead of a fixed
//!   injection count.
//!
//! ## Example: one campaign
//!
//! ```
//! use grel_core::campaign::{run_campaign, CampaignConfig};
//! use gpu_workloads::VectorAdd;
//! use gpu_archs::geforce_gtx_480;
//! use simt_sim::Structure;
//!
//! let mut cfg = CampaignConfig::quick(1);
//! cfg.injections = 16; // doc-test sized
//! let result = run_campaign(
//!     &geforce_gtx_480(),
//!     &VectorAdd::new(512, 1),
//!     Structure::VectorRegisterFile,
//!     cfg,
//! )?;
//! assert_eq!(result.tally.total(), 16);
//! println!("AVF = {:.2}% ± {:.2}%", result.avf() * 100.0, result.margin_99 * 100.0);
//! # Ok::<(), simt_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ace;
pub mod breakdown;
pub mod campaign;
pub mod convergence;
pub mod epf;
pub mod perf;
pub mod protection;
pub mod provenance;
pub mod runner;
pub mod sampling;
pub mod stats;
pub mod study;

pub use ace::{AceAnalyzer, AceMode, LifetimeOracle, StructureReport};
pub use breakdown::{
    avf_by_bit, avf_by_phase, detailed_campaign, due_fraction, mbu_campaign, SiteOutcome,
};
pub use campaign::{
    golden_run, golden_run_hooked, golden_run_with_ace, run_campaign, run_campaign_hooked,
    run_campaign_parallel, run_campaign_parallel_hooked, run_campaign_with_golden,
    run_campaign_with_golden_hooked, run_campaign_with_ladder, run_campaign_with_ladder_hooked,
    run_campaign_with_oracle_hooked, run_injections, run_injections_checkpointed, CampaignConfig,
    CampaignResult, CheckpointLadder, GoldenRun, Outcome, Tally,
};
pub use convergence::{
    ConvergenceMonitor, ConvergenceSnapshot, StratumProgress, DEFAULT_TARGET_MARGIN,
};
pub use epf::{eit, epf, structure_bits, structure_fit, FitBreakdown};
pub use perf::{profile, PerfProfile};
pub use protection::{project, protection_sweep, ProtectedPoint, Protection};
pub use provenance::{
    golden_write_log, parse_site, run_campaign_with_provenance_hooked, trace_one, CellStat,
    MaskingReason, Provenance, ProvenanceAggregate, SingleTrace, RF_REGIONS,
};
pub use sampling::{
    run_adaptive_campaign, run_adaptive_campaign_hooked, AdaptiveCampaign, RoundPlan, SamplingPlan,
    StrataSpec, StratumSnapshot,
};
pub use study::{
    evaluate_point, evaluate_point_hooked, run_study, run_study_hooked, run_study_parallel,
    run_study_parallel_hooked, AvfRow, EpfRow, EvalPoint, Findings, StructureEval, StudyConfig,
    StudyResult,
};
