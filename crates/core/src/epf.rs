//! FIT, EIT and the paper's combined metric: Executions Per Failure.
//!
//! AVF alone compares structures, not systems: it ignores clock frequency,
//! structure sizes and how long the program runs. The paper therefore
//! defines **EPF = EIT / FIT_GPU** (Fig. 3):
//!
//! * `FIT_structure = raw_FIT/Mbit × Mbits × AVF` — failures in 10⁹ device
//!   hours contributed by one structure;
//! * `FIT_GPU` — the sum over the studied structures of all SMs;
//! * `EIT` — complete workload executions in 10⁹ hours, from the measured
//!   cycle count and the shader clock;
//! * `EPF` — how many executions complete between failures.

use serde::{Deserialize, Serialize};
use simt_sim::{ArchConfig, Structure};

/// Seconds in 10⁹ hours (the FIT time base).
pub const FIT_HOURS_SECONDS: f64 = 3.6e12;

/// Bits in one structure across all SMs of the device.
///
/// # Example
/// ```
/// use grel_core::epf::structure_bits;
/// use gpu_archs::quadro_fx_5600;
/// use simt_sim::Structure;
/// // 8192 words × 32 bits × 16 SMs
/// assert_eq!(structure_bits(&quadro_fx_5600(), Structure::VectorRegisterFile),
///            8192 * 32 * 16);
/// ```
pub fn structure_bits(arch: &ArchConfig, structure: Structure) -> u64 {
    let words = match structure {
        Structure::VectorRegisterFile => arch.rf_words_per_sm(),
        Structure::LocalMemory => arch.lds_words_per_sm(),
        Structure::ScalarRegisterFile => arch.srf_words_per_sm(),
    };
    words as u64 * 32 * arch.num_sms as u64
}

/// FIT of one structure given its measured AVF.
///
/// # Example
/// ```
/// use grel_core::epf::structure_fit;
/// use gpu_archs::quadro_fx_5600;
/// use simt_sim::Structure;
/// let fit = structure_fit(&quadro_fx_5600(), Structure::VectorRegisterFile, 0.1);
/// assert!(fit > 0.0);
/// ```
pub fn structure_fit(arch: &ArchConfig, structure: Structure, avf: f64) -> f64 {
    let mbits = structure_bits(arch, structure) as f64 / 1e6;
    arch.raw_fit_per_mbit * mbits * avf
}

/// The FIT contributions of the studied structures of one device running
/// one workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FitBreakdown {
    /// Vector register file FIT.
    pub rf: f64,
    /// Local memory FIT.
    pub lds: f64,
    /// Scalar register file FIT (0 on devices without one).
    pub srf: f64,
}

impl FitBreakdown {
    /// Builds the breakdown from per-structure AVFs.
    pub fn from_avf(arch: &ArchConfig, avf_rf: f64, avf_lds: f64, avf_srf: f64) -> Self {
        FitBreakdown {
            rf: structure_fit(arch, Structure::VectorRegisterFile, avf_rf),
            lds: structure_fit(arch, Structure::LocalMemory, avf_lds),
            srf: if arch.srf_words_per_sm() > 0 {
                structure_fit(arch, Structure::ScalarRegisterFile, avf_srf)
            } else {
                0.0
            },
        }
    }

    /// `FIT_GPU`: total failures in 10⁹ hours.
    pub fn total(&self) -> f64 {
        self.rf + self.lds + self.srf
    }
}

/// Executions In Time: complete workload executions in 10⁹ device hours.
///
/// # Example
/// ```
/// use grel_core::epf::eit;
/// use gpu_archs::geforce_gtx_480;
/// // A 1.401 GHz device finishing a run in 1.401e6 cycles executes
/// // 1e-3 s per run -> 3.6e15 runs per 1e9 hours.
/// let e = eit(&geforce_gtx_480(), 1_401_000);
/// assert!((e - 3.6e15).abs() / 3.6e15 < 1e-9);
/// ```
pub fn eit(arch: &ArchConfig, cycles: u64) -> f64 {
    assert!(cycles > 0, "execution must take at least one cycle");
    let seconds = cycles as f64 / (arch.clock_mhz as f64 * 1e6);
    FIT_HOURS_SECONDS / seconds
}

/// Executions Per Failure: `EIT / FIT_GPU`.
///
/// Returns `f64::INFINITY` for a zero-FIT workload (nothing vulnerable).
///
/// # Example
/// ```
/// use grel_core::epf::epf;
/// assert_eq!(epf(1e15, 1e2), 1e13);
/// assert!(epf(1e15, 0.0).is_infinite());
/// ```
pub fn epf(eit: f64, fit_gpu: f64) -> f64 {
    if fit_gpu == 0.0 {
        f64::INFINITY
    } else {
        eit / fit_gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, hd_radeon_7970, quadro_fx_5600};

    #[test]
    fn bits_scale_with_device() {
        let si = hd_radeon_7970();
        assert_eq!(
            structure_bits(&si, Structure::VectorRegisterFile),
            65536 * 32 * 32
        );
        assert_eq!(
            structure_bits(&si, Structure::ScalarRegisterFile),
            2048 * 32 * 32
        );
        assert_eq!(
            structure_bits(&quadro_fx_5600(), Structure::ScalarRegisterFile),
            0
        );
    }

    #[test]
    fn fit_is_linear_in_avf() {
        let a = quadro_fx_5600();
        let f1 = structure_fit(&a, Structure::LocalMemory, 0.2);
        let f2 = structure_fit(&a, Structure::LocalMemory, 0.4);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
        assert_eq!(structure_fit(&a, Structure::LocalMemory, 0.0), 0.0);
    }

    #[test]
    fn breakdown_totals() {
        let a = hd_radeon_7970();
        let b = FitBreakdown::from_avf(&a, 0.1, 0.2, 0.05);
        assert!(b.rf > 0.0 && b.lds > 0.0 && b.srf > 0.0);
        assert!((b.total() - (b.rf + b.lds + b.srf)).abs() < 1e-9);
        let nv = FitBreakdown::from_avf(&quadro_fx_5600(), 0.1, 0.2, 0.05);
        assert_eq!(nv.srf, 0.0, "no scalar file on NVIDIA");
    }

    #[test]
    fn faster_device_has_higher_eit_for_same_cycles() {
        let g80 = quadro_fx_5600(); // 1350 MHz
        let si = hd_radeon_7970(); // 925 MHz
        assert!(eit(&g80, 1_000_000) > eit(&si, 1_000_000));
    }

    #[test]
    fn epf_magnitude_is_paper_scale() {
        // Typical numbers: ~1e6-cycle workloads, AVF ~ 10% => EPF within
        // the paper's 1e12..1e16 span.
        for arch in all_devices() {
            let e = eit(&arch, 2_000_000);
            let fit = FitBreakdown::from_avf(&arch, 0.10, 0.10, 0.05).total();
            let v = epf(e, fit);
            assert!(
                (1e10..1e18).contains(&v),
                "{}: EPF {v:e} out of plausible span",
                arch.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycles_rejected() {
        let _ = eit(&quadro_fx_5600(), 0);
    }
}
