//! Adaptive stratified sampling: reach a target AVF margin with the
//! fewest replayed injections.
//!
//! The paper's campaigns draw a fixed uniform sample (2,000 injections
//! → ±2.88 % at 99 %). That budget is spent blindly: most of a typical
//! site population is *provably dead* (the [`LifetimeOracle`] knows a
//! flip there can never be read), and within the live remainder the
//! failure probability varies strongly with fault cycle and bit
//! position. This module turns the campaign interface around — the
//! caller states the precision (`target_margin`) and the engine spends
//! the fewest injections that deliver it:
//!
//! 1. **Stratify** the flat `(SM, word, bit, cycle)` site space along
//!    byproducts the toolkit already computes: live vs dead oracle
//!    intervals, fault-cycle quartile, bit half, and (optionally) the
//!    word-index region. Stratum weights are *exact* integer counts
//!    (live weights via [`LifetimeOracle::live_word_cycles_in`]), not
//!    estimates.
//! 2. **Pilot**: draw a small deterministic sample from every
//!    non-empty stratum.
//! 3. **Allocate** the remaining budget in rounds by Neyman allocation
//!    (`n_h ∝ W_h·s_h`, with the per-stratum deviation floored by the
//!    Wilson score center so an all-masked pilot still leaves a
//!    stratum allocatable).
//! 4. **Stop** when the post-stratified margin — dead stratum exact at
//!    zero width, sampled strata combined in quadrature from their
//!    finite-population Wilson intervals, unsampled strata bounded
//!    linearly at half width — is at or below the target.
//!
//! # Determinism
//!
//! The engine inherits the PR-3 contract end to end. Each stratum owns
//! a seed-stable partial Fisher–Yates permutation over its *own* index
//! space (`campaign::FlatStream` sized to the stratum, seeded from the
//! campaign seed and the stratum index), and a rank→site mapping built
//! from explicit live/dead cycle segments — drawing the n-th site of a
//! rare stratum costs O(log segments), never a scan of the full
//! population. Each round's sites flow through the existing striped
//! worker pool and scatter-merge, so round tallies are bit-identical
//! at any `--jobs`, with pruning and batching on or off. Allocation is
//! a pure function of (campaign definition, cumulative stratum
//! tallies): same seed ⇒ same rounds, asserted by
//! `tests/sampling_equivalence.rs`.

use crate::ace::{LifetimeOracle, WordCycleSegment};
use crate::campaign::{
    campaign_population, decode_control_site, decode_site, golden_run_hooked, structure_label,
    structure_words, CampaignConfig, CheckpointLadder, FlatStream, GoldenRun, Tally,
};
use crate::runner::replay_sites;
use crate::stats::{Proportion, Z_99};
use gpu_workloads::Workload;
use grel_telemetry::{Event, NoopHook, TelemetryHook};
use simt_sim::{ArchConfig, FaultModelKind, FaultSite, SimError, Structure};

/// Which stratification axes the engine crosses. Axes that a campaign
/// cannot support are dropped silently: liveness needs a captured
/// [`LifetimeOracle`] and the transient model; an axis whose
/// cardinality exceeds the dimension it splits just yields empty
/// strata, which carry zero weight and are never drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrataSpec {
    /// Split provably-dead sites (per the lifetime oracle) into their
    /// own stratum. The dead stratum's AVF is exactly zero — oracle
    /// soundness, not an estimate — so it contributes nothing to the
    /// post-stratified margin and is never allocated beyond its pilot.
    pub liveness: bool,
    /// Split the live remainder by fault-cycle quartile.
    pub cycle: bool,
    /// Split by bit position (low half `0..16` vs high half `16..32`).
    pub bit: bool,
    /// Split by word-index (RF region / LDS address) quartile. Off by
    /// default: the cycle and bit axes capture most of the variance
    /// and fewer strata keep the pilot cheap.
    pub region: bool,
}

impl Default for StrataSpec {
    fn default() -> Self {
        StrataSpec {
            liveness: true,
            cycle: true,
            bit: true,
            region: false,
        }
    }
}

impl StrataSpec {
    /// Every axis on (8 live strata × 4 regions = 32 cells + dead).
    pub fn full() -> Self {
        StrataSpec {
            liveness: true,
            cycle: true,
            bit: true,
            region: true,
        }
    }

    /// No axes at all: one stratum, equivalent to uniform sampling
    /// with a margin-driven stop rule.
    pub fn none() -> Self {
        StrataSpec {
            liveness: false,
            cycle: false,
            bit: false,
            region: false,
        }
    }
}

/// The adaptive engine's knobs. A default plan is *disabled*
/// (`target_margin == 0.0`): the campaign keeps its fixed-`injections`
/// uniform path byte-for-byte, which is what lets the engine ride on
/// [`crate::study::StudyConfig`] without disturbing any baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingPlan {
    /// Target half-width of the post-stratified 99 % AVF interval; the
    /// engine stops as soon as its margin is at or below this. `0.0`
    /// disables the engine entirely.
    pub target_margin: f64,
    /// Pilot draws per non-empty stratum (clamped to the stratum
    /// population; at least 1). The default is deliberately lean —
    /// with the default nine-stratum partition a pilot of 8 replays at
    /// most 64 live sites, and rounds grow geometrically from there —
    /// because every pilot site is spent before any variance is known.
    pub pilot: u32,
    /// Stratification axes.
    pub strata: StrataSpec,
}

impl Default for SamplingPlan {
    fn default() -> Self {
        SamplingPlan {
            target_margin: 0.0,
            pilot: 8,
            strata: StrataSpec::default(),
        }
    }
}

impl SamplingPlan {
    /// A plan targeting `margin` with default pilot and strata.
    pub fn with_target(margin: f64) -> Self {
        SamplingPlan {
            target_margin: margin,
            ..Self::default()
        }
    }

    /// Whether the adaptive engine is on (a positive target margin).
    pub fn enabled(&self) -> bool {
        self.target_margin > 0.0
    }
}

/// One stratum's final state.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumSnapshot {
    /// Label (`live/c2/b0`, `dead`, `all`, …).
    pub label: String,
    /// Exact site count of the stratum (saturated to `u64`).
    pub population: u64,
    /// Sites sampled (pruned dead sites included — they classify
    /// without replay but still count as drawn trials).
    pub seen: u64,
    /// The final allocation target (equals `seen` once converged).
    pub planned: u64,
    /// Outcome counters over the stratum's sample.
    pub tally: Tally,
    /// Stratum AVF point estimate (`failures / seen`; 0 when unsampled).
    pub avf: f64,
    /// Wilson 99 % interval bounds (finite-population corrected).
    pub lo: f64,
    /// Upper Wilson bound.
    pub hi: f64,
}

/// One allocation round, recorded for reproducibility: the quota
/// vector is the pure-function output `tests/sampling_equivalence.rs`
/// pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPlan {
    /// Round index (0 = pilot).
    pub round: u32,
    /// Sites drawn from each stratum this round (stratum order).
    pub quotas: Vec<u64>,
    /// Cumulative sites sampled after the round.
    pub sampled: u64,
    /// Cumulative sites actually replayed after the round (sampled
    /// minus oracle-pruned; equals `sampled` when pruning is off).
    pub replayed: u64,
    /// Post-stratified margin after the round, in bits (`f64::to_bits`
    /// of the margin — kept as bits so the plan derives `Eq` and the
    /// purity test can compare plans exactly).
    pub margin_bits: u64,
}

impl RoundPlan {
    /// The post-stratified 99 % margin after this round.
    pub fn margin(&self) -> f64 {
        f64::from_bits(self.margin_bits)
    }
}

/// Result of an adaptive campaign on one structure.
#[derive(Debug, Clone)]
pub struct AdaptiveCampaign {
    /// Structure injected.
    pub structure: Structure,
    /// Outcome counters over every sampled site (all strata pooled).
    pub tally: Tally,
    /// Total sites sampled.
    pub sampled: u64,
    /// Total sites replayed (sampled minus oracle-pruned).
    pub replayed: u64,
    /// Post-stratified AVF estimate `Σ W_h · p̂_h`.
    pub avf: f64,
    /// Post-stratified SDC-only AVF.
    pub avf_sdc: f64,
    /// Post-stratified 99 % margin at the stop point.
    pub margin: f64,
    /// The margin the engine aimed for.
    pub target_margin: f64,
    /// Whether the target was reached (false only if the round cap or
    /// population exhaustion ended the campaign first).
    pub converged: bool,
    /// Size of the full fault-site population.
    pub population: u64,
    /// Fault-free cycle count.
    pub golden_cycles: u64,
    /// Every allocation round in order (round 0 is the pilot).
    pub rounds: Vec<RoundPlan>,
    /// Per-stratum final state, in stratum order.
    pub strata: Vec<StratumSnapshot>,
}

/// Hard cap on allocation rounds — a backstop, never the expected stop
/// (per-round quotas at least double a stratum's sample, so real
/// campaigns converge or exhaust long before this).
const MAX_ROUNDS: u32 = 64;

/// SplitMix64-style mix of the campaign seed and a stratum index, so
/// neighbouring strata draw unrelated (but fully reproducible)
/// permutation streams.
fn stratum_seed(seed: u64, h: usize) -> u64 {
    let mut z = seed ^ (h as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rank → `(sm, word, cycle)` bijection over one stratum's word-cycle
/// sites. Rectangular strata decode arithmetically; liveness strata
/// bisect the cumulative lengths of their explicit segment list.
enum RankMap {
    /// `sms × words × cycles` box (no liveness axis).
    Rect {
        sms: u32,
        word_lo: u32,
        words: u32,
        cycle_lo: u64,
        cycles: u64,
    },
    /// Explicit live or dead cycle runs; `cum[i]` is the number of
    /// word-cycle sites in `segs[..i]`.
    Segs {
        segs: Vec<WordCycleSegment>,
        cum: Vec<u64>,
    },
}

impl RankMap {
    fn from_segments(segs: Vec<WordCycleSegment>) -> Self {
        let mut cum = Vec::with_capacity(segs.len());
        let mut total = 0u64;
        for s in &segs {
            cum.push(total);
            total += s.len();
        }
        RankMap::Segs { segs, cum }
    }

    /// Word-cycle sites in the map.
    fn word_cycles(&self) -> u128 {
        match self {
            RankMap::Rect {
                sms, words, cycles, ..
            } => *sms as u128 * *words as u128 * *cycles as u128,
            RankMap::Segs { segs, cum } => match (segs.last(), cum.last()) {
                (Some(s), Some(&c)) => (c + s.len()) as u128,
                _ => 0,
            },
        }
    }

    /// The `rank`-th word-cycle site (rank < `word_cycles()`).
    fn site_of(&self, rank: u128) -> (u32, u32, u64) {
        match self {
            RankMap::Rect {
                word_lo,
                words,
                cycle_lo,
                cycles,
                ..
            } => {
                // Rank-major over (sm, word, cycle), matching the flat
                // encoding order.
                let per_sm = *words as u128 * *cycles as u128;
                let sm = (rank / per_sm) as u32;
                let rem = rank % per_sm;
                let word = word_lo + (rem / *cycles as u128) as u32;
                let cycle = cycle_lo + (rem % *cycles as u128) as u64;
                (sm, word, cycle)
            }
            RankMap::Segs { segs, cum } => {
                let rank = rank as u64;
                let i = cum.partition_point(|&c| c <= rank) - 1;
                let seg = &segs[i];
                (seg.sm, seg.word, seg.lo + (rank - cum[i]))
            }
        }
    }
}

/// Internal per-stratum accounting plus the stratum's own sampler.
struct Stratum {
    label: String,
    population: u128,
    seen: u64,
    planned: u64,
    tally: Tally,
    /// The dead stratum's estimate is analytic (AVF exactly 0).
    dead: bool,
    /// Rank → word-cycle site mapping over this stratum only.
    map: RankMap,
    /// Width of the stratum's bit-axis slice (16 or 32) and its first
    /// bit. The dead stratum always spans all 32 bits — the bit axis
    /// only splits live cells.
    bits_span: u32,
    bit_lo: u32,
    /// Seed-stable in-stratum permutation (campaign seed ⊕ stratum
    /// index), drawn lazily as rounds allocate.
    stream: FlatStream,
}

impl Stratum {
    /// The next undrawn site of the stratum as a *flat population
    /// index* (the same encoding `campaign::decode_site` /
    /// `decode_control_site` consume), or `None` when exhausted.
    fn next_flat(&mut self, geom: &Geometry) -> Option<u128> {
        let local = self.stream.next_index()?;
        let targets = if geom.control { 4u128 } else { 1 };
        let lanes = self.bits_span as u128 * targets;
        let wc = local / lanes;
        let lane = (local % lanes) as u32;
        let target = lane / self.bits_span;
        let bit = self.bit_lo + lane % self.bits_span;
        let (sm, word, cycle) = self.map.site_of(wc);
        let mut idx = sm as u128 * geom.words as u128 + word as u128;
        if geom.control {
            idx = idx * 4 + target as u128;
        }
        Some((idx * 32 + bit as u128) * geom.cycles as u128 + cycle as u128)
    }
}

/// The fixed site-space geometry shared by every stratum of one
/// campaign.
struct Geometry {
    /// Words per SM for storage models, warp slots for control.
    words: u32,
    cycles: u64,
    /// Control sites carry a 4-way target axis between word and bit.
    control: bool,
}

impl Stratum {
    fn weight(&self, total: u128) -> f64 {
        self.population as f64 / total as f64
    }

    fn exhausted(&self) -> bool {
        self.seen as u128 >= self.population
    }

    /// Wilson 99 % interval over the stratum's own population; `(0,0)`
    /// for the dead stratum (oracle soundness) and `(0,1)` — maximal
    /// ignorance — before any sample.
    fn wilson(&self) -> (f64, f64) {
        if self.dead {
            return (0.0, 0.0);
        }
        if self.seen == 0 {
            return (0.0, 1.0);
        }
        let pop = u64::try_from(self.population).unwrap_or(u64::MAX);
        Proportion::new(self.tally.failures(), self.seen, pop).wilson(Z_99)
    }

    /// Point estimate used in the post-stratified sum: exact 0 for the
    /// dead stratum, the sample proportion otherwise, and the
    /// maximal-ignorance midpoint ½ before any sample (paired with the
    /// ½ linear margin contribution, so an unsampled stratum is never
    /// silently counted as safe).
    fn estimate(&self) -> f64 {
        if self.dead {
            0.0
        } else if self.seen == 0 {
            0.5
        } else {
            self.tally.failures() as f64 / self.seen as f64
        }
    }

    fn estimate_sdc(&self) -> f64 {
        if self.dead {
            0.0
        } else if self.seen == 0 {
            0.5
        } else {
            self.tally.sdc as f64 / self.seen as f64
        }
    }

    /// Per-stratum standard deviation for Neyman allocation, floored
    /// by the Wilson center so an all-masked sample keeps a small
    /// positive deviation (it could still be hiding failures).
    fn deviation(&self) -> f64 {
        if self.dead || self.exhausted() {
            return 0.0;
        }
        if self.seen == 0 {
            return 0.5;
        }
        let pop = u64::try_from(self.population).unwrap_or(u64::MAX);
        let (lo, hi) = Proportion::new(self.tally.failures(), self.seen, pop).wilson(Z_99);
        let center = f64::midpoint(lo, hi);
        (center * (1.0 - center)).sqrt()
    }
}

/// The stratum partition of one campaign's site space: axis
/// cardinalities, the site → stratum classifier and the exact weights.
struct Partition {
    structure: Structure,
    /// Words per SM for storage models, warp slots for control.
    words: u32,
    cycles: u64,
    liveness: bool,
    cyc_parts: u32,
    bit_parts: u32,
    reg_parts: u32,
}

/// `ceil(a·b / c)` over integers: the lower edge of part `a` when `c`
/// units are split into `b` parts by `floor(x·b/c)`.
fn part_lo(part: u128, parts: u128, units: u128) -> u128 {
    (part * units).div_ceil(parts)
}

impl Partition {
    fn live_cells(&self) -> usize {
        (self.cyc_parts * self.bit_parts * self.reg_parts) as usize
    }

    fn count(&self) -> usize {
        self.live_cells() + usize::from(self.liveness)
    }

    fn cell_label(&self, cell: usize) -> String {
        let r = cell as u32 % self.reg_parts;
        let b = (cell as u32 / self.reg_parts) % self.bit_parts;
        let q = cell as u32 / (self.reg_parts * self.bit_parts);
        let mut parts: Vec<String> = Vec::new();
        if self.liveness {
            parts.push("live".to_string());
        }
        if self.cyc_parts > 1 {
            parts.push(format!("c{q}"));
        }
        if self.bit_parts > 1 {
            parts.push(format!("b{b}"));
        }
        if self.reg_parts > 1 {
            parts.push(format!("r{r}"));
        }
        if parts.is_empty() {
            "all".to_string()
        } else {
            parts.join("/")
        }
    }

    /// Builds the stratum table: exact populations, rank→site maps and
    /// seed-stable per-stratum permutation streams. `lanes` is the
    /// per-`(word, cycle)` multiplicity that the bit axis splits (32
    /// bits for storage, `4 targets × 32 bits` for control).
    fn strata(
        &self,
        num_sms: u32,
        lanes: u128,
        population: u128,
        oracle: Option<&LifetimeOracle>,
        seed: u64,
    ) -> Vec<Stratum> {
        let bits_per_part = lanes / self.bit_parts as u128;
        let bits_span = 32 / self.bit_parts;
        let mut out: Vec<Stratum> = Vec::with_capacity(self.count());
        let mut live_total: u128 = 0;
        for cell in 0..self.live_cells() {
            let r = cell as u128 % self.reg_parts as u128;
            let b = (cell as u32 / self.reg_parts) % self.bit_parts;
            let q = cell as u128 / (self.reg_parts as u128 * self.bit_parts as u128);
            let w_lo = part_lo(r, self.reg_parts as u128, self.words as u128) as u32;
            let w_hi = part_lo(r + 1, self.reg_parts as u128, self.words as u128) as u32;
            let c_lo = part_lo(q, self.cyc_parts as u128, self.cycles as u128) as u64;
            let c_hi = part_lo(q + 1, self.cyc_parts as u128, self.cycles as u128) as u64;
            let map = match (self.liveness, oracle) {
                (true, Some(oracle)) => {
                    let map = RankMap::from_segments(oracle.segments_in(
                        self.structure,
                        w_lo,
                        w_hi,
                        c_lo,
                        c_hi,
                        true,
                    ));
                    debug_assert_eq!(
                        map.word_cycles(),
                        oracle.live_word_cycles_in(self.structure, w_lo, w_hi, c_lo, c_hi) as u128,
                        "segment list and live count must describe the same set"
                    );
                    map
                }
                _ => RankMap::Rect {
                    sms: num_sms,
                    word_lo: w_lo,
                    words: w_hi.saturating_sub(w_lo),
                    cycle_lo: c_lo,
                    cycles: c_hi.saturating_sub(c_lo),
                },
            };
            let population = map.word_cycles() * bits_per_part;
            live_total += population;
            out.push(Stratum {
                label: self.cell_label(cell),
                population,
                seen: 0,
                planned: 0,
                tally: Tally::default(),
                dead: false,
                bits_span,
                bit_lo: b * bits_span,
                stream: FlatStream::new(population, stratum_seed(seed, cell)),
                map,
            });
        }
        if self.liveness {
            let oracle = oracle.expect("liveness strata require an oracle");
            let map = RankMap::from_segments(oracle.segments_in(
                self.structure,
                0,
                self.words,
                0,
                self.cycles,
                false,
            ));
            let dead_population = map.word_cycles() * lanes;
            debug_assert_eq!(
                dead_population,
                population - live_total,
                "the dead stratum is exactly the complement of the live cells"
            );
            out.push(Stratum {
                label: "dead".to_string(),
                population: dead_population,
                seen: 0,
                planned: 0,
                tally: Tally::default(),
                dead: true,
                bits_span: 32,
                bit_lo: 0,
                stream: FlatStream::new(dead_population, stratum_seed(seed, out.len())),
                map,
            });
        }
        out
    }
}

/// The post-stratified estimate: `(avf, avf_sdc, margin)`.
///
/// The margin combines three exact-by-construction pieces: the dead
/// stratum contributes zero (oracle soundness); sampled strata combine
/// their weighted finite-population Wilson half-widths in quadrature
/// (independent samples); unsampled strata are bounded linearly at
/// half their weight (an AVF lives in `[0, 1]`, so ½ is the worst-case
/// half-width — no distributional assumption at all).
fn post_stratified(strata: &[Stratum], total: u128) -> (f64, f64, f64) {
    let mut avf = 0.0;
    let mut avf_sdc = 0.0;
    let mut linear = 0.0;
    let mut quad = 0.0;
    for s in strata {
        if s.population == 0 {
            continue;
        }
        let w = s.weight(total);
        avf += w * s.estimate();
        avf_sdc += w * s.estimate_sdc();
        if s.dead {
            continue;
        }
        if s.seen == 0 {
            linear += w * 0.5;
        } else {
            let (lo, hi) = s.wilson();
            let half = (hi - lo) / 2.0;
            quad += (w * half) * (w * half);
        }
    }
    (avf, avf_sdc, linear + quad.sqrt())
}

/// Neyman allocation: the next round's quota per stratum, a pure
/// function of (stratum populations, cumulative stratum tallies,
/// target margin, pilot). Quotas at least double a stratum's sample
/// per round (geometric growth bounds both the round count and the
/// overshoot past a noisy pilot's variance estimate).
fn allocate(strata: &[Stratum], total: u128, target: f64, pilot: u64) -> Vec<u64> {
    let weighted: Vec<f64> = strata
        .iter()
        .map(|s| {
            if s.population == 0 {
                0.0
            } else {
                s.weight(total) * s.deviation()
            }
        })
        .collect();
    let sum: f64 = weighted.iter().sum();
    if sum <= 0.0 {
        return vec![0; strata.len()];
    }
    // Infinite-population Neyman total for margin `target` at Z_99 —
    // conservative (the FPC only shrinks real margins below this).
    let n_total = (Z_99 / target) * (Z_99 / target) * sum * sum;
    strata
        .iter()
        .zip(&weighted)
        .map(|(s, &ws)| {
            if ws <= 0.0 {
                return 0;
            }
            let share = (n_total * ws / sum).ceil() as u64;
            let missing = share.saturating_sub(s.seen);
            let headroom = u64::try_from(s.population).unwrap_or(u64::MAX) - s.seen;
            // Geometric round growth: at most double (pilot-floored).
            missing.min(s.seen.max(pilot)).min(headroom)
        })
        .collect()
}

/// Runs one adaptive campaign end to end (golden run, ladder and
/// oracle captured internally). See
/// [`run_adaptive_campaign_hooked`] for the telemetry-carrying
/// variant.
///
/// # Errors
///
/// Propagates replay failures that are not fault classifications.
///
/// # Panics
///
/// Panics if `plan` is disabled (`target_margin <= 0`) or not finite.
pub fn run_adaptive_campaign(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    plan: SamplingPlan,
) -> Result<AdaptiveCampaign, SimError> {
    run_adaptive_campaign_hooked(arch, workload, structure, cfg, plan, &NoopHook)
}

/// [`run_adaptive_campaign`] with full telemetry through `hook`:
/// per-round `campaign.round` events, per-stratum sample counters,
/// `campaign.convergence` events (with the per-stratum `strata` array)
/// at every round boundary, and a closing `campaign.done`.
///
/// # Errors
///
/// Same as [`run_adaptive_campaign`].
pub fn run_adaptive_campaign_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    plan: SamplingPlan,
    hook: &H,
) -> Result<AdaptiveCampaign, SimError> {
    let golden = golden_run_hooked(arch, workload, hook)?;
    let ladder = CheckpointLadder::build_hooked(arch, workload, &golden, &cfg, hook)?;
    // The oracle serves the liveness axis (and pruning, when on), so it
    // is captured whenever the model supports it — not only when
    // `cfg.prune` is set. That keeps the partition, and therefore the
    // whole allocation sequence, invariant across the prune knob.
    let oracle = (cfg.fault_model == FaultModelKind::Transient)
        .then(|| LifetimeOracle::capture(arch, workload))
        .transpose()?;
    run_adaptive_with_context(
        arch,
        workload,
        structure,
        cfg,
        plan,
        &golden,
        &ladder,
        oracle.as_ref(),
        hook,
    )
}

/// The engine proper, against shared golden run, ladder and oracle
/// (the study driver captures those once per point).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_adaptive_with_context<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    plan: SamplingPlan,
    golden: &GoldenRun,
    ladder: &CheckpointLadder,
    oracle: Option<&LifetimeOracle>,
    hook: &H,
) -> Result<AdaptiveCampaign, SimError> {
    assert!(
        plan.target_margin.is_finite() && plan.target_margin > 0.0,
        "adaptive sampling needs a positive finite target margin"
    );
    let started = H::ENABLED.then(std::time::Instant::now);
    let cycles = golden.cycles;
    assert!(cycles > 0, "cannot sample an empty execution");
    let (words, lanes): (u32, u128) = match cfg.fault_model {
        FaultModelKind::Control => {
            let slots = arch.max_warps_per_sm;
            assert!(slots > 0, "device has no warp slots");
            (slots, 4 * 32)
        }
        _ => {
            let words = structure_words(arch, structure);
            assert!(words > 0, "device has no {structure}");
            (words, 32)
        }
    };
    let population = arch.num_sms as u128 * words as u128 * lanes * cycles as u128;
    let spec = plan.strata;
    let partition = Partition {
        structure,
        words,
        cycles,
        liveness: spec.liveness && oracle.is_some() && cfg.fault_model == FaultModelKind::Transient,
        cyc_parts: if spec.cycle { 4 } else { 1 },
        bit_parts: if spec.bit { 2 } else { 1 },
        reg_parts: if spec.region { 4 } else { 1 },
    };
    let mut strata = partition.strata(arch.num_sms, lanes, population, oracle, cfg.seed);
    let geom = Geometry {
        words,
        cycles,
        control: cfg.fault_model == FaultModelKind::Control,
    };
    let storage_kind = cfg.fault_model.storage_kind();
    let decode = |idx: u128| -> FaultSite {
        match cfg.fault_model {
            FaultModelKind::Control => decode_control_site(structure, words, cycles, idx),
            _ => {
                let site = decode_site(structure, words, cycles, idx);
                match storage_kind {
                    Some(kind) => site.with_kind(kind),
                    None => site,
                }
            }
        }
    };
    // Rounds drive their own convergence narration: cadence is pushed
    // past any real sample size and `emit_now` fires at each round
    // boundary instead, so the event stream narrates rounds, not raw
    // outcome counts.
    let mut monitor = crate::convergence::ConvergenceMonitor::new(
        workload.name(),
        &arch.name,
        structure,
        cfg.fault_model,
        campaign_population(arch, structure, cfg.fault_model, cycles),
        0,
        u64::MAX,
    )
    .with_target(plan.target_margin);
    let mut round_cfg = cfg;
    round_cfg.convergence = 0;
    let pilot = plan.pilot.max(1) as u64;
    let mut rounds: Vec<RoundPlan> = Vec::new();
    let mut sampled: u64 = 0;
    let mut replayed: u64 = 0;
    let (mut avf, mut avf_sdc, mut margin) = post_stratified(&strata, population);
    // The pilot always runs: even when the dead-weight bound already
    // meets a loose target, an estimate backed by zero samples helps
    // nobody. Convergence is evaluated from round 1 on.
    let mut converged = false;
    // Round 0 draws the pilot; later rounds draw the Neyman quotas
    // computed from the tallies accumulated so far.
    let mut quotas: Vec<u64> = strata
        .iter()
        .map(|s| pilot.min(u64::try_from(s.population).unwrap_or(u64::MAX)))
        .collect();
    while !converged && (rounds.len() as u32) < MAX_ROUNDS && quotas.iter().any(|&q| q > 0) {
        // Draw this round's sites stratum by stratum: each stratum's
        // permutation stream yields the next undrawn in-stratum rank,
        // which the rank map turns into a concrete flat site index.
        let mut round_sites: Vec<FaultSite> = Vec::new();
        let mut site_stratum: Vec<usize> = Vec::new();
        let mut drawn: Vec<u64> = vec![0; strata.len()];
        for (h, s) in strata.iter_mut().enumerate() {
            for _ in 0..quotas[h] {
                let Some(flat) = s.next_flat(&geom) else {
                    break;
                };
                round_sites.push(decode(flat));
                site_stratum.push(h);
                drawn[h] += 1;
            }
        }
        if round_sites.is_empty() {
            break;
        }
        let replay_oracle = if cfg.prune { oracle } else { None };
        let outcomes = replay_sites(
            arch,
            workload,
            golden,
            &round_sites,
            round_cfg,
            ladder,
            replay_oracle,
            hook,
        )?;
        let round_replayed = match replay_oracle {
            Some(o) => round_sites.iter().filter(|&&s| !o.is_dead(s)).count() as u64,
            None => round_sites.len() as u64,
        };
        for (&h, &o) in site_stratum.iter().zip(&outcomes) {
            strata[h].seen += 1;
            strata[h].tally.add(o);
            monitor.observe(o, &NoopHook);
        }
        sampled += round_sites.len() as u64;
        replayed += round_replayed;
        (avf, avf_sdc, margin) = post_stratified(&strata, population);
        converged = margin <= plan.target_margin;
        quotas = if converged {
            vec![0; strata.len()]
        } else {
            let mut q = allocate(&strata, population, plan.target_margin, pilot);
            if q.iter().all(|&x| x == 0) {
                // The Wilson-quadrature margin can sit above the target
                // while the normal-approximation allocation believes it
                // is met. Force progress into the widest remaining
                // contributor (deterministic: first maximum wins).
                let widest = strata
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.dead && !s.exhausted() && s.population > 0)
                    .max_by(|(ia, a), (ib, b)| {
                        let wa = a.weight(population) * (a.wilson().1 - a.wilson().0);
                        let wb = b.weight(population) * (b.wilson().1 - b.wilson().0);
                        wa.partial_cmp(&wb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(ib.cmp(ia))
                    })
                    .map(|(i, _)| i);
                if let Some(h) = widest {
                    let s = &strata[h];
                    let headroom = u64::try_from(s.population).unwrap_or(u64::MAX) - s.seen;
                    q[h] = s.seen.max(pilot).min(headroom);
                }
                q
            } else {
                q
            }
        };
        for (s, &q) in strata.iter_mut().zip(&quotas) {
            s.planned = s.seen + q;
        }
        let planned_total: u64 = strata.iter().map(|s| s.planned).sum();
        let round = rounds.len() as u32;
        rounds.push(RoundPlan {
            round,
            quotas: drawn.clone(),
            sampled,
            replayed,
            margin_bits: margin.to_bits(),
        });
        if H::ENABLED {
            for (h, s) in strata.iter().enumerate() {
                if drawn[h] > 0 {
                    let label = s.label.as_str();
                    hook.count(
                        &format!("campaign_stratum_sampled_total{{stratum=\"{label}\"}}"),
                        drawn[h],
                    );
                }
            }
            hook.count("campaign_rounds_total", 1);
            hook.count("campaign_adaptive_replayed_total", round_replayed);
            hook.event(
                &Event::new("campaign.round")
                    .field("workload", workload.name())
                    .field("device", arch.name.as_str())
                    .field("structure", structure_label(structure))
                    .field("fault_kind", cfg.fault_model.as_str())
                    .field("round", round as u64)
                    .field("sampled", sampled)
                    .field("replayed", replayed)
                    .field("avf", avf)
                    .field("margin", margin)
                    .field("target_margin", plan.target_margin)
                    .field("converged", converged),
            );
            monitor.set_planned(planned_total);
            monitor.set_strata(
                strata
                    .iter()
                    .filter(|s| s.population > 0)
                    .map(|s| crate::convergence::StratumProgress {
                        label: s.label.clone(),
                        seen: s.seen,
                        planned: s.planned,
                    })
                    .collect(),
            );
            monitor.emit_now(hook);
        }
    }
    let result = AdaptiveCampaign {
        structure,
        tally: strata
            .iter()
            .fold(Tally::default(), |t, s| t.merge(&s.tally)),
        sampled,
        replayed,
        avf,
        avf_sdc,
        margin,
        target_margin: plan.target_margin,
        converged,
        population: campaign_population(arch, structure, cfg.fault_model, cycles),
        golden_cycles: cycles,
        rounds,
        strata: strata
            .iter()
            .map(|s| {
                let (lo, hi) = s.wilson();
                StratumSnapshot {
                    label: s.label.clone(),
                    population: u64::try_from(s.population).unwrap_or(u64::MAX),
                    seen: s.seen,
                    planned: s.planned,
                    tally: s.tally,
                    avf: if s.seen == 0 {
                        0.0
                    } else {
                        s.tally.failures() as f64 / s.seen as f64
                    },
                    lo,
                    hi,
                }
            })
            .collect(),
    };
    if let Some(started) = started {
        let seconds = started.elapsed().as_secs_f64();
        let per_second = if seconds > 0.0 {
            result.replayed as f64 / seconds
        } else {
            0.0
        };
        hook.observe("campaign_seconds", seconds);
        hook.gauge("campaign_injections_per_second", per_second);
        hook.event(
            &Event::new("campaign.done")
                .field("workload", workload.name())
                .field("device", arch.name.as_str())
                .field("structure", structure.to_string())
                .field("fault_kind", cfg.fault_model.as_str())
                .field("injections", result.tally.total())
                .field("masked", result.tally.masked)
                .field("sdc", result.tally.sdc)
                .field("due", result.tally.due)
                .field("hang", result.tally.hang)
                .field("avf", result.avf)
                .field("golden_cycles", cycles)
                .field("ladder_rungs", ladder.len())
                .field("sampling", "adaptive")
                .field("rounds", result.rounds.len() as u64)
                .field("replayed", result.replayed)
                .field("margin", result.margin)
                .field("target_margin", result.target_margin)
                .field("converged", result.converged)
                .field("seconds", seconds)
                .field("injections_per_second", per_second),
        );
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{geforce_gtx_480, quadro_fx_5600};
    use gpu_workloads::VectorAdd;

    fn plan(target: f64) -> SamplingPlan {
        SamplingPlan {
            target_margin: target,
            pilot: 8,
            strata: StrataSpec::default(),
        }
    }

    #[test]
    fn default_plan_is_disabled() {
        assert!(!SamplingPlan::default().enabled());
        assert!(SamplingPlan::with_target(0.05).enabled());
    }

    #[test]
    fn adaptive_campaign_reaches_a_loose_target() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 11);
        let mut cfg = CampaignConfig::quick(11);
        cfg.threads = 2;
        let r = run_adaptive_campaign(&arch, &w, Structure::VectorRegisterFile, cfg, plan(0.05))
            .unwrap();
        assert!(r.converged, "margin {} vs target 0.05", r.margin);
        assert!(r.margin <= 0.05);
        assert_eq!(r.tally.total(), r.sampled);
        assert!(r.replayed <= r.sampled);
        assert!(!r.rounds.is_empty());
        assert_eq!(
            r.rounds.last().unwrap().sampled,
            r.sampled,
            "rounds narrate the whole campaign"
        );
        let strata_seen: u64 = r.strata.iter().map(|s| s.seen).sum();
        assert_eq!(strata_seen, r.sampled, "every sample belongs to a stratum");
        assert!((0.0..=1.0).contains(&r.avf));
        assert!(r.avf_sdc <= r.avf + 1e-12);
    }

    #[test]
    fn stratum_populations_partition_the_site_space() {
        let arch = geforce_gtx_480();
        let w = VectorAdd::new(1024, 3);
        let cfg = CampaignConfig::quick(3);
        let r = run_adaptive_campaign(&arch, &w, Structure::VectorRegisterFile, cfg, plan(0.05))
            .unwrap();
        let total: u64 = r.strata.iter().map(|s| s.population).sum();
        assert_eq!(total, r.population, "strata must tile the population");
        let dead = r.strata.iter().find(|s| s.label == "dead").unwrap();
        assert!(
            dead.population > r.population / 2,
            "vectoradd leaves most of the RF dead ({} of {})",
            dead.population,
            r.population
        );
        assert_eq!(dead.tally.failures(), 0, "dead samples can never fail");
    }

    #[test]
    fn allocation_is_a_pure_function_of_the_seed() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 7);
        let cfg = CampaignConfig::quick(7);
        let a = run_adaptive_campaign(&arch, &w, Structure::VectorRegisterFile, cfg, plan(0.05))
            .unwrap();
        let b = run_adaptive_campaign(&arch, &w, Structure::VectorRegisterFile, cfg, plan(0.05))
            .unwrap();
        assert_eq!(a.rounds, b.rounds, "same seed must yield the same rounds");
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.avf.to_bits(), b.avf.to_bits());
        assert_eq!(a.margin.to_bits(), b.margin.to_bits());
    }

    #[test]
    fn no_strata_spec_still_converges() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 5);
        let cfg = CampaignConfig::quick(5);
        let p = SamplingPlan {
            target_margin: 0.25,
            pilot: 8,
            strata: StrataSpec::none(),
        };
        let r = run_adaptive_campaign(&arch, &w, Structure::VectorRegisterFile, cfg, p).unwrap();
        assert!(r.converged);
        assert_eq!(r.strata.len(), 1);
        assert_eq!(r.strata[0].label, "all");
    }

    #[test]
    #[should_panic(expected = "positive finite target margin")]
    fn disabled_plan_rejected() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 1);
        let _ = run_adaptive_campaign(
            &arch,
            &w,
            Structure::VectorRegisterFile,
            CampaignConfig::quick(1),
            SamplingPlan::default(),
        );
    }
}
