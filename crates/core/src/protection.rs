//! Error-protection trade-off evaluation.
//!
//! The paper motivates EPF as the metric an architect uses to decide
//! whether a protection mechanism is worth its performance cost: "Larger
//! EPF numbers show a larger number of executions between failures and
//! different protection mechanisms can deliver different improvements in
//! the FIT rates and can also have different impact on performance."
//! This module closes that loop: given a measured evaluation point, it
//! projects FIT, EIT and EPF under standard SRAM protection schemes.

use crate::epf::{epf, FitBreakdown};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A storage-array protection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// Unprotected SRAM (the paper's measured baseline).
    None,
    /// Per-word parity: single-bit flips are *detected* (SDCs become
    /// DUEs) but not corrected. FIT is unchanged; the SDC/DUE mix shifts.
    Parity,
    /// SECDED ECC: single-bit flips are corrected; only multi-bit upsets
    /// (modelled as a residual fraction) still fail.
    Secded,
}

impl Protection {
    /// Fraction of single-bit failures that survive the scheme.
    ///
    /// SECDED's residual covers the multi-bit events a single-bit study
    /// cannot see; 8 % is a common planning number for adjacent MBUs at
    /// these nodes.
    pub fn residual_failure_fraction(self) -> f64 {
        match self {
            Protection::None | Protection::Parity => 1.0,
            Protection::Secded => 0.08,
        }
    }

    /// Relative runtime cost of the scheme (extra access latency /
    /// pipeline bubbles), as a cycle multiplier.
    pub fn runtime_overhead(self) -> f64 {
        match self {
            Protection::None => 1.0,
            Protection::Parity => 1.02,
            Protection::Secded => 1.06,
        }
    }

    /// Whether surviving failures are detected (DUE) rather than silent.
    pub fn detects(self) -> bool {
        matches!(self, Protection::Parity | Protection::Secded)
    }

    /// All schemes, weakest first.
    pub fn all() -> [Protection; 3] {
        [Protection::None, Protection::Parity, Protection::Secded]
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protection::None => "none",
            Protection::Parity => "parity",
            Protection::Secded => "SECDED",
        })
    }
}

/// Projected reliability/performance of one evaluation point under a
/// protection scheme.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProtectedPoint {
    /// The scheme applied (to the studied storage structures).
    pub scheme: Protection,
    /// Total FIT after protection.
    pub fit_gpu: f64,
    /// Fraction of remaining failures that are silent corruptions.
    pub sdc_share: f64,
    /// Executions in 10⁹ hours after the runtime overhead.
    pub eit: f64,
    /// Executions per failure.
    pub epf: f64,
}

/// Projects a measured point (`fit`, `eit`, baseline SDC share) under a
/// protection scheme.
///
/// # Example
/// ```
/// use grel_core::protection::{project, Protection};
/// use grel_core::FitBreakdown;
///
/// let fit = FitBreakdown { rf: 80.0, lds: 20.0, srf: 0.0 };
/// let base = project(&fit, 1e15, 0.7, Protection::None);
/// let ecc = project(&fit, 1e15, 0.7, Protection::Secded);
/// assert!(ecc.epf > base.epf, "ECC buys executions between failures");
/// assert_eq!(ecc.sdc_share, 0.0, "surviving failures are detected");
/// ```
pub fn project(
    fit: &FitBreakdown,
    eit_baseline: f64,
    sdc_share_baseline: f64,
    scheme: Protection,
) -> ProtectedPoint {
    let fit_gpu = fit.total() * scheme.residual_failure_fraction();
    let eit = eit_baseline / scheme.runtime_overhead();
    ProtectedPoint {
        scheme,
        fit_gpu,
        sdc_share: if scheme.detects() {
            0.0
        } else {
            sdc_share_baseline
        },
        eit,
        epf: epf(eit, fit_gpu),
    }
}

/// Projects a point under every scheme, weakest first.
pub fn protection_sweep(
    fit: &FitBreakdown,
    eit_baseline: f64,
    sdc_share_baseline: f64,
) -> Vec<ProtectedPoint> {
    Protection::all()
        .into_iter()
        .map(|s| project(fit, eit_baseline, sdc_share_baseline, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit() -> FitBreakdown {
        FitBreakdown {
            rf: 100.0,
            lds: 50.0,
            srf: 10.0,
        }
    }

    #[test]
    fn parity_converts_sdc_to_due_without_fit_change() {
        let base = project(&fit(), 1e15, 0.6, Protection::None);
        let par = project(&fit(), 1e15, 0.6, Protection::Parity);
        assert_eq!(par.fit_gpu, base.fit_gpu);
        assert_eq!(base.sdc_share, 0.6);
        assert_eq!(par.sdc_share, 0.0);
        assert!(par.epf < base.epf, "parity costs a little performance");
    }

    #[test]
    fn secded_cuts_fit_by_the_residual() {
        let base = project(&fit(), 1e15, 0.6, Protection::None);
        let ecc = project(&fit(), 1e15, 0.6, Protection::Secded);
        assert!((ecc.fit_gpu - base.fit_gpu * 0.08).abs() < 1e-9);
        assert!(ecc.epf > base.epf * 10.0, "order-of-magnitude EPF gain");
    }

    #[test]
    fn sweep_is_ordered_and_complete() {
        let sweep = protection_sweep(&fit(), 1e15, 0.5);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].scheme, Protection::None);
        assert_eq!(sweep[2].scheme, Protection::Secded);
        // EIT monotonically decreases with protection overhead.
        assert!(sweep[0].eit > sweep[1].eit && sweep[1].eit > sweep[2].eit);
    }

    #[test]
    fn display_names() {
        assert_eq!(Protection::Secded.to_string(), "SECDED");
        assert_eq!(Protection::None.to_string(), "none");
    }

    #[test]
    fn zero_fit_gives_infinite_epf() {
        let z = FitBreakdown::default();
        let p = project(&z, 1e15, 0.0, Protection::Secded);
        assert!(p.epf.is_infinite());
    }
}
