//! Statistical fault-injection campaigns.
//!
//! A campaign measures the AVF of one storage structure for one workload
//! on one device, GUFI/SIFI style:
//!
//! 1. run the workload fault-free to capture the **golden** output and the
//!    total cycle count;
//! 2. draw `n` fault sites uniformly at random over
//!    `(SM, word, bit, cycle)`;
//! 3. replay the workload once per site with the single bit flip armed;
//! 4. classify each run as **masked** (output identical), **SDC** (silent
//!    data corruption: output differs) or **DUE** (detected unrecoverable
//!    error: bad access, divergent barrier or watchdog timeout);
//! 5. report `AVF = (SDC + DUE) / n` with its statistical margin.
//!
//! Replays are embarrassingly parallel; [`run_campaign`] fans them out
//! over a scoped worker pool (`cfg.threads` wide, or
//! [`run_campaign_parallel`] for an explicit `--jobs` count) with fully
//! deterministic results: outcomes are merged back in site order, so the
//! campaign is bit-identical to a sequential run at any job count. The
//! pool lives in [`crate::runner`], which documents the contract.
//!
//! Replays also do not start from cycle zero: the golden run leaves
//! behind a ladder of mid-execution snapshots ([`CheckpointLadder`]) and
//! each injection resumes from the nearest checkpoint at or before its
//! fault cycle. The prefix it skips is fault-free and therefore
//! bit-identical to the golden execution, so checkpointed replay produces
//! exactly the same outcome sequence as from-zero replay — only faster.

use crate::ace::{AceAnalyzer, LifetimeOracle};
use crate::runner::replay_sites;
use crate::stats::{error_margin, fault_population, Proportion, Z_99};
use gpu_workloads::Workload;
use grel_telemetry::{Event, NoopHook, SpanRecord, TelemetryHook};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simt_sim::{
    ArchConfig, Checkpoint, ControlTarget, Due, FaultKind, FaultModelKind, FaultSite, GlobalWrite,
    Gpu, MaskProbe, NoopObserver, Session, SessionStatus, SimError, Structure, TraceObserver,
    TraceRecord,
};
use std::fmt;
use std::time::Instant;

/// Deterministic sibling-ordering ordinals for the point-level phase
/// spans (`point:workload@device/...`): golden run, oracle capture,
/// ladder build, then one campaign per structure starting at
/// [`PHASE_CAMPAIGN_BASE`] + the structure's index.
pub(crate) const PHASE_GOLDEN: u64 = 0;
pub(crate) const PHASE_ORACLE: u64 = 1;
pub(crate) const PHASE_LADDER: u64 = 2;
pub(crate) const PHASE_CAMPAIGN_BASE: u64 = 3;

/// Short stable token naming a structure in span paths and tables
/// (`campaign:rf`); the `Display` impl is prose ("register file").
pub fn structure_label(structure: Structure) -> &'static str {
    match structure {
        Structure::VectorRegisterFile => "rf",
        Structure::LocalMemory => "lds",
        Structure::ScalarRegisterFile => "srf",
    }
}

/// The sibling-ordering ordinal of a structure's campaign span.
pub(crate) fn campaign_phase_seq(structure: Structure) -> u64 {
    PHASE_CAMPAIGN_BASE
        + match structure {
            Structure::VectorRegisterFile => 0,
            Structure::LocalMemory => 1,
            Structure::ScalarRegisterFile => 2,
        }
}

/// Outcome of one fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The flip did not affect the program output.
    Masked,
    /// Silent data corruption: the run completed with a wrong output.
    Sdc,
    /// Detected unrecoverable error: bad access, divergent barrier or
    /// another crash the device itself reports.
    Due,
    /// The replay never terminated: the watchdog cycle bound expired
    /// with the launch still in flight (parked warps, barrier deadlock,
    /// scheduler corruption). Kept distinct from [`Outcome::Due`] —
    /// hangs are detected by the *harness*, not the device, and the
    /// stuck-at/control fault models produce them at very different
    /// rates than crashes.
    Hang,
}

impl Outcome {
    /// All outcomes, in tally order (`masked`, `sdc`, `due`, `hang`).
    pub const ALL: [Outcome; 4] = [Outcome::Masked, Outcome::Sdc, Outcome::Due, Outcome::Hang];

    /// The canonical lower-case label used in telemetry, JSON and CSV
    /// output. Round-trips through the [`std::str::FromStr`] impl.
    ///
    /// # Example
    /// ```
    /// use grel_core::campaign::Outcome;
    /// assert_eq!(Outcome::Sdc.as_str(), "sdc");
    /// assert_eq!("sdc".parse::<Outcome>(), Ok(Outcome::Sdc));
    /// assert!("SDC!".parse::<Outcome>().is_err());
    /// ```
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Due => "due",
            Outcome::Hang => "hang",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Outcome {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Outcome::ALL
            .into_iter()
            .find(|o| o.as_str() == s)
            .ok_or_else(|| format!("unknown outcome {s:?} (expected masked, sdc, due or hang)"))
    }
}

/// Outcome counters of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tally {
    /// Runs with unchanged output.
    pub masked: u64,
    /// Runs with corrupted output.
    pub sdc: u64,
    /// Crashed runs (device-detected errors).
    pub due: u64,
    /// Runs terminated by the watchdog cycle bound.
    pub hang: u64,
}

impl Tally {
    /// Total injections.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.due + self.hang
    }

    /// Failures (SDC + DUE + hang) — the AVF numerator. Hangs count as
    /// failures exactly as they did when folded into DUE, so splitting
    /// them out never moves an AVF estimate.
    pub fn failures(&self) -> u64 {
        self.sdc + self.due + self.hang
    }

    pub(crate) fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Due => self.due += 1,
            Outcome::Hang => self.hang += 1,
        }
    }

    /// Combines two tallies (e.g. campaign shards run with disjoint
    /// seeds on different machines).
    pub fn merge(&self, other: &Tally) -> Tally {
        Tally {
            masked: self.masked + other.masked,
            sdc: self.sdc + other.sdc,
            due: self.due + other.due,
            hang: self.hang + other.hang,
        }
    }
}

/// Campaign parameters.
///
/// The checkpoint, pruning and early-exit fields tune replay
/// accelerators and change only wall-clock time, never outcomes:
///
/// # Example
/// ```
/// use grel_core::campaign::CampaignConfig;
/// let quick = CampaignConfig::quick(42);
/// let paper = CampaignConfig::paper(42);
/// assert!(paper.injections > quick.injections);
///
/// // Checkpoints default to auto spacing under a 256 MiB budget…
/// assert_eq!(paper.checkpoint_interval, 0);
/// assert_eq!(paper.checkpoint_budget_bytes, 0);
/// // …but both can be pinned, e.g. one snapshot every 500 cycles with at
/// // most 64 MiB of retained simulator state:
/// let mut tuned = quick;
/// tuned.checkpoint_interval = 500;
/// tuned.checkpoint_budget_bytes = 64 << 20;
/// assert_ne!(tuned, quick);
///
/// // The lifetime-oracle fast path is on by default (`repro --no-prune`
/// // reaches the slow path); tallies are identical either way.
/// assert!(paper.prune && paper.early_exit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of injections (the paper uses 2,000 per structure).
    pub injections: u32,
    /// RNG seed for fault-site sampling.
    pub seed: u64,
    /// Worker threads for the replay fan-out.
    pub threads: usize,
    /// Watchdog budget as a multiple of the fault-free cycle count.
    pub watchdog_factor: u64,
    /// Cycle spacing of the checkpoint ladder captured from the golden
    /// run; `0` selects an automatic spacing (one sixteenth of the golden
    /// cycle count).
    pub checkpoint_interval: u64,
    /// Upper bound in bytes on the simulator state retained by the
    /// checkpoint ladder; `0` selects the 256 MiB default. Once the
    /// budget is reached no further rungs are captured (late-cycle faults
    /// then replay from the highest retained rung).
    pub checkpoint_budget_bytes: u64,
    /// Pre-classify sampled sites against a [`LifetimeOracle`] captured
    /// from one instrumented golden run: flips landing outside every
    /// live interval of their word are recorded as `Masked` without a
    /// replay. Exact — the oracle over-approximates liveness, never the
    /// reverse — so tallies are bit-identical with pruning on or off.
    pub prune: bool,
    /// Terminate a replay as `Masked` the moment the flipped word is
    /// erased (clean overwrite or per-launch reset) without ever having
    /// been read. Only consulted when the oracle is off: a site that
    /// survives pruning is by construction read before any clean
    /// overwrite, so the probe could never fire. Only sound for
    /// transient flips — the probe stays disarmed for other kinds.
    pub early_exit: bool,
    /// Which fault model the campaign samples and injects. The default
    /// ([`FaultModelKind::Transient`]) reproduces the single-bit-flip
    /// campaigns bit-for-bit; the stuck-at and control models draw from
    /// their own site populations (see [`sample_model_sites`]).
    pub fault_model: FaultModelKind,
    /// Replay sites in bit-plane batches: up to
    /// [`simt_sim::MAX_BATCH_SCENARIOS`] transient sites sharing a
    /// checkpoint rung ride one shared golden replay as sparse overlay
    /// lanes, and a lane forks into a private replay only when its
    /// flipped word is first architecturally read. Exact — every read
    /// that could propagate a divergent word forks — so tallies are
    /// byte-identical with batching on or off at any job count. Only
    /// the transient model batches (like pruning, the lane model
    /// assumes a one-shot flip); other kinds replay scalar.
    pub batch: bool,
    /// Cadence of streaming `campaign.convergence` events: after every
    /// `convergence` merged outcomes (and once at the end of the
    /// campaign) the runner emits the running tally with its
    /// finite-population interval and a projected
    /// injections-to-target-margin estimate. `0` disables the stream.
    /// Events are folded from the merged site-order outcome vector —
    /// after the PR-3 scatter-merge — so the stream is byte-identical
    /// at any job count, with pruning and batching on or off.
    pub convergence: u64,
}

impl CampaignConfig {
    /// The paper's configuration: 2,000 injections (±2.88 % @ 99 %).
    pub fn paper(seed: u64) -> Self {
        CampaignConfig {
            injections: 2000,
            seed,
            threads: default_threads(),
            watchdog_factor: 10,
            checkpoint_interval: 0,
            checkpoint_budget_bytes: 0,
            prune: true,
            early_exit: true,
            fault_model: FaultModelKind::Transient,
            batch: true,
            convergence: 100,
        }
    }

    /// A quick-look configuration: 200 injections (±9.1 % @ 99 %).
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            injections: 200,
            ..Self::paper(seed)
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Everything measured by a fault-free reference run.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Output words of the fault-free execution.
    pub outputs: Vec<u32>,
    /// Total application cycles.
    pub cycles: u64,
}

/// Runs the workload fault-free, capturing golden output and cycles.
///
/// # Errors
///
/// Propagates launch failures (a correct workload/device pairing never
/// fails here).
pub fn golden_run(arch: &ArchConfig, workload: &dyn Workload) -> Result<GoldenRun, SimError> {
    golden_run_hooked(arch, workload, &NoopHook)
}

/// [`golden_run`] reporting wall time, cycle count and instructions
/// retired through a [`TelemetryHook`]. With [`NoopHook`] this *is*
/// `golden_run`: the instrumentation monomorphises away.
///
/// # Errors
///
/// Same as [`golden_run`].
pub fn golden_run_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    hook: &H,
) -> Result<GoldenRun, SimError> {
    let started = H::ENABLED.then(Instant::now);
    let mut gpu = Gpu::new(arch.clone());
    let outputs = workload.run(&mut gpu, &mut NoopObserver)?;
    let golden = GoldenRun {
        outputs,
        cycles: gpu.app_cycle(),
    };
    if let Some(started) = started {
        let seconds = started.elapsed().as_secs_f64();
        hook.observe("campaign_golden_seconds", seconds);
        hook.gauge("campaign_golden_cycles", golden.cycles as f64);
        hook.count(
            "sim_instructions_total",
            gpu.exec_totals().warp_instructions,
        );
        hook.event(
            &Event::new("golden.done")
                .field("workload", workload.name())
                .field("device", arch.name.as_str())
                .field("cycles", golden.cycles)
                .field("seconds", seconds),
        );
        if H::SPANS {
            hook.span(
                &SpanRecord::new(
                    format!("point:{}@{}/golden", workload.name(), arch.name),
                    0,
                    PHASE_GOLDEN,
                    started,
                )
                .tag("cycles", golden.cycles),
            );
        }
    }
    Ok(golden)
}

/// Runs the workload fault-free under the [`AceAnalyzer`], returning the
/// golden run and the analyzer (ACE AVF + occupancy for every structure).
///
/// # Errors
///
/// Propagates launch failures.
pub fn golden_run_with_ace(
    arch: &ArchConfig,
    workload: &dyn Workload,
) -> Result<(GoldenRun, AceAnalyzer), SimError> {
    let mut gpu = Gpu::new(arch.clone());
    let mut ace = AceAnalyzer::new(arch);
    let outputs = workload.run(&mut gpu, &mut ace)?;
    Ok((
        GoldenRun {
            outputs,
            cycles: gpu.app_cycle(),
        },
        ace,
    ))
}

/// Result of a fault-injection campaign on one structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Structure injected.
    pub structure: Structure,
    /// Outcome counters.
    pub tally: Tally,
    /// Fault-free cycle count (the sampling window).
    pub golden_cycles: u64,
    /// Size of the sampled fault-site population: every `(SM, word, bit,
    /// cycle)` candidate of the injected structure over the golden run.
    pub population: u64,
    /// Error margin of the AVF estimate at 99 % confidence, with the
    /// finite-population correction over [`CampaignResult::population`].
    /// Zero for an empty campaign.
    pub margin_99: f64,
}

impl CampaignResult {
    /// The fault-injection AVF: `(SDC + DUE) / injections`.
    pub fn avf(&self) -> f64 {
        if self.tally.total() == 0 {
            0.0
        } else {
            self.tally.failures() as f64 / self.tally.total() as f64
        }
    }

    /// SDC-only AVF (excludes detected errors).
    pub fn avf_sdc(&self) -> f64 {
        if self.tally.total() == 0 {
            0.0
        } else {
            self.tally.sdc as f64 / self.tally.total() as f64
        }
    }

    /// Merges a second campaign shard over the same `(arch, workload,
    /// structure)` into a combined estimate with a tighter margin.
    ///
    /// The merged margin uses the same finite-population correction as
    /// each shard's own margin (the shards sample the identical site
    /// population, so the correction carries over unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the shards disagree on structure, golden cycle count or
    /// population size (they would not be measuring the same
    /// population).
    pub fn merge(&self, other: &CampaignResult) -> CampaignResult {
        assert_eq!(
            self.structure, other.structure,
            "shards must share a structure"
        );
        assert_eq!(
            self.golden_cycles, other.golden_cycles,
            "shards must share the golden run"
        );
        assert_eq!(
            self.population, other.population,
            "shards must sample the same fault-site population"
        );
        let tally = self.tally.merge(&other.tally);
        CampaignResult {
            structure: self.structure,
            tally,
            golden_cycles: self.golden_cycles,
            population: self.population,
            margin_99: campaign_margin(self.population, tally.total()),
        }
    }

    /// The AVF as a [`Proportion`] with its confidence interval over the
    /// campaign's own fault-site population, or `None` for a campaign
    /// that ran no injections (an empty tally is reported as the absence
    /// of an estimate, never as a fabricated one-trial proportion).
    pub fn proportion(&self) -> Option<Proportion> {
        (self.tally.total() > 0)
            .then(|| Proportion::new(self.tally.failures(), self.tally.total(), self.population))
    }
}

/// The 99 % error margin for `trials` injections over a finite site
/// population; zero for an empty campaign (no trials, no estimate — the
/// caller reports the empty tally explicitly instead of masking it).
pub(crate) fn campaign_margin(population: u64, trials: u64) -> f64 {
    if trials == 0 {
        0.0
    } else {
        error_margin(population, trials, Z_99)
    }
}

/// Draws the deterministic fault-site list for a campaign: `n`
/// **distinct** `(SM, word, bit, cycle)` sites, uniform over the
/// structure's fault population.
///
/// Sampling is *without* replacement — the finite-population correction
/// in [`error_margin`] models a sample of distinct sites, so a duplicate
/// draw would silently widen the true interval. Distinctness comes from
/// a seed-stable partial Fisher–Yates shuffle over the flat site index
/// space, tracked sparsely in an index map: exactly `n` draws, O(n) time
/// and memory for any `n`, up to and including `n == population` (where
/// the result is a full permutation of the site space).
///
/// Exposed for reproducibility tooling: the sites depend only on the
/// arguments, never on threading.
///
/// A request larger than the population saturates to the full
/// population — the result is then a permutation of every site exactly
/// once (an exhaustive campaign), never a panic and never a duplicate.
///
/// # Panics
///
/// Panics if the device lacks the structure or if `cycles` is zero.
pub fn sample_sites(
    arch: &ArchConfig,
    structure: Structure,
    cycles: u64,
    n: u32,
    seed: u64,
) -> Vec<FaultSite> {
    let words = structure_words(arch, structure);
    assert!(words > 0, "device has no {structure}");
    assert!(cycles > 0, "cannot sample an empty execution");
    let population = arch.num_sms as u128 * words as u128 * 32 * cycles as u128;
    sample_flat(population, n, seed, |pick| {
        decode_site(structure, words, cycles, pick)
    })
}

/// Storage word count of `structure` on one SM of `arch`.
pub(crate) fn structure_words(arch: &ArchConfig, structure: Structure) -> u32 {
    match structure {
        Structure::VectorRegisterFile => arch.rf_words_per_sm(),
        Structure::LocalMemory => arch.lds_words_per_sm(),
        Structure::ScalarRegisterFile => arch.srf_words_per_sm(),
    }
}

/// An incremental seed-stable partial Fisher–Yates shuffle over a flat
/// index space: each [`FlatStream::next_index`] call extends the same
/// uniform permutation [`sample_flat`] draws, one distinct index at a
/// time, so a consumer can keep drawing until *its own* stopping rule
/// fires (the adaptive sampler) while remaining bit-compatible with the
/// fixed-`n` samplers (the first `n` indices of the stream are exactly
/// the indices `sample_flat(population, n, seed, …)` decodes).
///
/// Only the displaced prefix entries are materialised in a map: the
/// k-th draw swaps a uniform index from `[k, population)` into slot k,
/// so the first k slots are a uniform k-permutation of distinct
/// indices — O(1) amortised time and O(drawn) memory.
pub(crate) struct FlatStream {
    rng: StdRng,
    displaced: std::collections::HashMap<u128, u128>,
    population: u128,
    drawn: u128,
}

impl FlatStream {
    /// A fresh stream over `[0, population)`.
    pub(crate) fn new(population: u128, seed: u64) -> Self {
        FlatStream {
            rng: StdRng::seed_from_u64(seed),
            displaced: std::collections::HashMap::new(),
            population,
            drawn: 0,
        }
    }

    /// The next distinct index of the permutation, or `None` once every
    /// member of the population has been drawn.
    pub(crate) fn next_index(&mut self) -> Option<u128> {
        if self.drawn >= self.population {
            return None;
        }
        let k = self.drawn;
        let j = self.rng.gen_range(k..self.population);
        let pick = self.displaced.get(&j).copied().unwrap_or(j);
        let at_k = self.displaced.get(&k).copied().unwrap_or(k);
        self.displaced.insert(j, at_k);
        self.drawn += 1;
        Some(pick)
    }
}

/// Draws `min(n, population)` distinct flat indices from
/// `[0, population)` via [`FlatStream`] and decodes each into a site.
/// Saturates rather than panics when `n` exceeds the population: no set
/// of more than `population` distinct sites exists, so the caller gets
/// the exhaustive permutation instead.
fn sample_flat(
    population: u128,
    n: u32,
    seed: u64,
    decode: impl Fn(u128) -> FaultSite,
) -> Vec<FaultSite> {
    let n = (n as u128).min(population) as usize;
    let mut stream = FlatStream::new(population, seed);
    let mut sites = Vec::with_capacity(n);
    while sites.len() < n {
        let pick = stream.next_index().expect("n is clamped to the population");
        sites.push(decode(pick));
    }
    sites
}

/// Draws the deterministic fault-site list for a campaign under any
/// fault model.
///
/// * [`FaultModelKind::Transient`] — exactly [`sample_sites`]: the same
///   RNG stream over the same `(SM, word, bit, cycle)` population, so
///   the default model reproduces pre-taxonomy campaigns bit-for-bit.
/// * [`FaultModelKind::Stuck0`] / [`FaultModelKind::Stuck1`] — the same
///   storage-site population (a permanent fault still names a storage
///   cell and an onset cycle), with every site carrying the stuck-at
///   kind.
/// * [`FaultModelKind::Control`] — its own population over
///   `(SM, warp slot, control target, bit, cycle)`: flat index
///   `(((sm · slots + slot) · 4 + target) · 32 + bit) · cycles + cycle`
///   with `slots = arch.max_warps_per_sm`. Control sites carry the
///   campaign's `structure` only as a label (the injector targets
///   scheduler state, not storage); their `word` field is the warp/block
///   slot index.
///
/// Oversampling saturates exactly like [`sample_sites`]: a request
/// beyond the model's population returns the exhaustive permutation.
///
/// # Panics
///
/// Same conditions as [`sample_sites`]; the control population
/// additionally requires `arch.max_warps_per_sm > 0`.
pub fn sample_model_sites(
    arch: &ArchConfig,
    structure: Structure,
    model: FaultModelKind,
    cycles: u64,
    n: u32,
    seed: u64,
) -> Vec<FaultSite> {
    match model.storage_kind() {
        Some(kind) => sample_sites(arch, structure, cycles, n, seed)
            .into_iter()
            .map(|s| s.with_kind(kind))
            .collect(),
        None => {
            let slots = arch.max_warps_per_sm;
            assert!(slots > 0, "device has no warp slots");
            assert!(cycles > 0, "cannot sample an empty execution");
            let population = arch.num_sms as u128 * slots as u128 * 4 * 32 * cycles as u128;
            sample_flat(population, n, seed, |pick| {
                decode_control_site(structure, slots, cycles, pick)
            })
        }
    }
}

/// Maps a flat index in `[0, sms · words · 32 · cycles)` back to the
/// fault site it names, inverting `((sm · words + word) · 32 + bit) ·
/// cycles + cycle`.
pub(crate) fn decode_site(
    structure: Structure,
    words: u32,
    cycles: u64,
    mut idx: u128,
) -> FaultSite {
    let cycle = (idx % cycles as u128) as u64;
    idx /= cycles as u128;
    let bit = (idx % 32) as u8;
    idx /= 32;
    let word = (idx % words as u128) as u32;
    let sm = (idx / words as u128) as u32;
    FaultSite::new(structure, sm, word, bit, cycle)
}

/// Per-cycle control-fault site count of a device (see
/// [`crate::stats::control_sites_per_cycle`]).
pub(crate) fn control_population_bits(arch: &ArchConfig) -> u64 {
    crate::stats::control_sites_per_cycle(arch.num_sms as u64, arch.max_warps_per_sm as u64)
}

/// Size of the fault-site population a campaign samples from: the
/// universe [`sample_model_sites`] draws `(site, cycle)` pairs out of,
/// and the `N` of every finite-population margin the campaign reports.
///
/// Storage models count every bit of every word of `structure` on every
/// SM; the control model counts 4 targets × 32 bits per warp slot per
/// SM. Both multiply by `cycles` (saturating at `u64::MAX`).
pub fn campaign_population(
    arch: &ArchConfig,
    structure: Structure,
    model: FaultModelKind,
    cycles: u64,
) -> u64 {
    let structure_bits = match model {
        // Storage models: every bit of every word of the structure.
        FaultModelKind::Transient | FaultModelKind::Stuck0 | FaultModelKind::Stuck1 => {
            (match structure {
                Structure::VectorRegisterFile => arch.rf_words_per_sm(),
                Structure::LocalMemory => arch.lds_words_per_sm(),
                Structure::ScalarRegisterFile => arch.srf_words_per_sm(),
            }) as u64
                * 32
                * arch.num_sms as u64
        }
        // Control model: 4 targets × 32 bits per warp slot per SM.
        FaultModelKind::Control => control_population_bits(arch),
    };
    fault_population(structure_bits, cycles)
}

/// Maps a flat index in `[0, sms · slots · 4 · 32 · cycles)` back to the
/// control-fault site it names, inverting
/// `(((sm · slots + slot) · 4 + target) · 32 + bit) · cycles + cycle`.
pub(crate) fn decode_control_site(
    structure: Structure,
    slots: u32,
    cycles: u64,
    mut idx: u128,
) -> FaultSite {
    let cycle = (idx % cycles as u128) as u64;
    idx /= cycles as u128;
    let bit = (idx % 32) as u8;
    idx /= 32;
    let target = ControlTarget::ALL[(idx % 4) as usize];
    idx /= 4;
    let slot = (idx % slots as u128) as u32;
    let sm = (idx / slots as u128) as u32;
    FaultSite::new(structure, sm, slot, bit, cycle).with_kind(FaultKind::Control(target))
}

/// Default cap on the simulator state a [`CheckpointLadder`] may retain.
const DEFAULT_CHECKPOINT_BUDGET: u64 = 256 << 20;

/// A ladder of mid-execution snapshots captured from one fault-free run.
///
/// Rungs are spaced `cfg.checkpoint_interval` cycles apart (auto-spaced
/// when `0`) and capped by `cfg.checkpoint_budget_bytes`. The ladder is
/// immutable after construction and `Sync`, so the replay fan-out shares
/// it across worker threads without copying.
#[derive(Debug)]
pub struct CheckpointLadder {
    ckpts: Vec<Checkpoint>,
}

impl CheckpointLadder {
    /// A ladder with no rungs: every replay starts from cycle zero.
    pub fn empty() -> Self {
        CheckpointLadder { ckpts: Vec::new() }
    }

    /// Re-runs the workload fault-free, snapshotting the full simulator
    /// state every interval until the budget is exhausted or the run
    /// finishes.
    ///
    /// # Errors
    ///
    /// Propagates launch failures from the fault-free run (a pairing that
    /// produced `golden` never fails here).
    pub fn build(
        arch: &ArchConfig,
        workload: &dyn Workload,
        golden: &GoldenRun,
        cfg: &CampaignConfig,
    ) -> Result<Self, SimError> {
        Self::build_hooked(arch, workload, golden, cfg, &NoopHook)
    }

    /// [`CheckpointLadder::build`] reporting rung count, retained bytes,
    /// snapshot cost and build wall time through a [`TelemetryHook`].
    ///
    /// # Errors
    ///
    /// Same as [`CheckpointLadder::build`].
    pub fn build_hooked<H: TelemetryHook>(
        arch: &ArchConfig,
        workload: &dyn Workload,
        golden: &GoldenRun,
        cfg: &CampaignConfig,
        hook: &H,
    ) -> Result<Self, SimError> {
        let started = H::ENABLED.then(Instant::now);
        let interval = if cfg.checkpoint_interval > 0 {
            cfg.checkpoint_interval
        } else {
            (golden.cycles / 16).max(1)
        };
        let budget = if cfg.checkpoint_budget_bytes > 0 {
            cfg.checkpoint_budget_bytes
        } else {
            DEFAULT_CHECKPOINT_BUDGET
        };
        let mut gpu = Gpu::new(arch.clone());
        let mut session = Session::new(&mut gpu, workload.plan());
        let mut ckpts = Vec::new();
        let mut total = 0u64;
        let mut mark = interval;
        while mark < golden.cycles {
            session.run_until_cycle(mark, &mut NoopObserver)?;
            if session.finished() {
                break;
            }
            let ck = session.snapshot();
            let sz = ck.size_bytes() as u64;
            if total + sz > budget {
                break;
            }
            total += sz;
            ckpts.push(ck);
            mark += interval;
        }
        let session_tel = *session.telemetry();
        let ladder = CheckpointLadder { ckpts };
        if let Some(started) = started {
            let seconds = started.elapsed().as_secs_f64();
            hook.observe("ladder_build_seconds", seconds);
            hook.count("sim_snapshots_total", session_tel.snapshots);
            hook.count("sim_snapshot_bytes_total", session_tel.snapshot_bytes);
            hook.observe(
                "sim_snapshot_seconds",
                session_tel.snapshot_nanos as f64 * 1e-9,
            );
            hook.gauge("ladder_rungs", ladder.len() as f64);
            hook.gauge("ladder_bytes", ladder.total_bytes() as f64);
            hook.event(
                &Event::new("ladder.done")
                    .field("workload", workload.name())
                    .field("device", arch.name.as_str())
                    .field("rungs", ladder.len())
                    .field("bytes", ladder.total_bytes())
                    .field("seconds", seconds),
            );
            if H::SPANS {
                hook.span(
                    &SpanRecord::new(
                        format!("point:{}@{}/ladder", workload.name(), arch.name),
                        0,
                        PHASE_LADDER,
                        started,
                    )
                    .tag("rungs", ladder.len())
                    .tag("bytes", ladder.total_bytes()),
                );
            }
        }
        Ok(ladder)
    }

    /// The highest rung at or before `cycle`, if any. A fault armed for
    /// `cycle` still fires when replay resumes here: the checkpoint was
    /// taken at an iteration boundary, before the fault-application step
    /// of its own cycle.
    pub fn nearest(&self, cycle: u64) -> Option<&Checkpoint> {
        self.nearest_indexed(cycle).map(|(_, ck)| ck)
    }

    /// [`CheckpointLadder::nearest`] with the rung's ladder index, for
    /// rung-hit accounting.
    pub fn nearest_indexed(&self, cycle: u64) -> Option<(usize, &Checkpoint)> {
        match self.ckpts.partition_point(|c| c.cycle() <= cycle) {
            0 => None,
            i => Some((i - 1, &self.ckpts[i - 1])),
        }
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.ckpts.len()
    }

    /// Whether the ladder has no rungs.
    pub fn is_empty(&self) -> bool {
        self.ckpts.is_empty()
    }

    /// Estimated bytes of simulator state retained by all rungs.
    pub fn total_bytes(&self) -> u64 {
        self.ckpts.iter().map(|c| c.size_bytes() as u64).sum()
    }
}

/// Classifies one injection replay on a caller-owned device, resuming
/// from `ckpt` when given.
///
/// `gpu` is a scratch device owned by the replaying worker: a checkpoint
/// resume overwrites it in place (so the worker pays for the device
/// allocation once, not per replay), and a from-zero replay resets it to
/// a fresh device first. Either way the replay never observes state left
/// behind by a previous injection.
///
/// # Errors
///
/// A [`SimError::Due`] from the replay is a *classification* (the fault
/// was detected), not an error; anything else — a launch that fails to
/// validate, an exhausted allocator — means the harness itself broke and
/// is propagated to the caller instead of being folded into the tally.
#[allow(clippy::too_many_arguments)]
pub(crate) fn classify_on<H: TelemetryHook>(
    gpu: &mut Gpu,
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    site: FaultSite,
    watchdog_factor: u64,
    early_exit: bool,
    ckpt: Option<&Checkpoint>,
    hook: &H,
) -> Result<Outcome, SimError> {
    // Saturating: a pathological `watchdog_factor` (up to `u64::MAX`)
    // clamps to an effectively-infinite budget instead of overflowing.
    let watchdog = golden
        .cycles
        .saturating_mul(watchdog_factor)
        .saturating_add(10_000);
    // The clean-overwrite early exit is only sound for transient flips:
    // a stuck-at cell is re-asserted by the very overwrite the probe
    // would treat as masking, and a control fault never lives in a
    // storage word. The probe itself is also gated (belt and braces),
    // but disarming here skips the per-event probe cost entirely.
    let early_exit = early_exit && site.is_transient();
    // (replay result, early-exited?, cycles skipped, instructions
    // inherited from the checkpoint prefix, session restore counters).
    let (result, exited, start_cycle, base_instructions, session_tel) = match ckpt {
        Some(ck) => {
            let mut session = Session::resume(&mut *gpu, ck);
            let base = if H::ENABLED {
                session.gpu().exec_totals().warp_instructions
            } else {
                0
            };
            session.gpu_mut().set_watchdog(watchdog);
            session.gpu_mut().arm_fault(site);
            let (r, exited) = drive_replay(&mut session, golden, site, arch, early_exit);
            let tel = *session.telemetry();
            (r, exited, ck.cycle(), base, tel)
        }
        None => {
            *gpu = Gpu::new(arch.clone());
            gpu.set_watchdog(watchdog);
            gpu.arm_fault(site);
            let (r, exited) = if early_exit {
                let mut session = Session::new(&mut *gpu, workload.plan());
                drive_replay(&mut session, golden, site, arch, true)
            } else {
                (workload.run(gpu, &mut NoopObserver), false)
            };
            (r, exited, 0, 0, simt_sim::SessionTelemetry::default())
        }
    };
    if H::ENABLED {
        hook.count(
            "campaign_cycles_replayed_total",
            gpu.app_cycle().saturating_sub(start_cycle),
        );
        hook.count("campaign_cycles_saved_total", start_cycle);
        if exited {
            hook.count("campaign_early_exit_total", 1);
            hook.count(
                "campaign_cycles_saved_total",
                golden.cycles.saturating_sub(gpu.app_cycle()),
            );
        }
        hook.count(
            "sim_instructions_total",
            gpu.exec_totals()
                .warp_instructions
                .saturating_sub(base_instructions),
        );
        if session_tel.restores > 0 {
            hook.count("sim_restores_total", session_tel.restores);
            hook.observe(
                "sim_restore_seconds",
                session_tel.restore_nanos as f64 * 1e-9,
            );
        }
    }
    match result {
        Ok(out) if out == golden.outputs => Ok(Outcome::Masked),
        Ok(_) => Ok(Outcome::Sdc),
        Err(SimError::Due(Due::WatchdogTimeout { .. })) => {
            if H::ENABLED {
                record_watchdog_kill(
                    gpu,
                    arch,
                    workload,
                    golden,
                    site,
                    watchdog,
                    start_cycle,
                    hook,
                );
            }
            Ok(Outcome::Hang)
        }
        Err(SimError::Due(_)) => Ok(Outcome::Due),
        Err(e) => Err(e),
    }
}

/// Timing evidence for a watchdog kill: how far the hung replay got
/// against its cycle budget, and the cycles it burned before the
/// harness cut it off (the cost a tighter `watchdog_factor` would
/// recover). Shared by the plain and traced classify paths.
#[allow(clippy::too_many_arguments)]
fn record_watchdog_kill<H: TelemetryHook>(
    gpu: &Gpu,
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    site: FaultSite,
    budget: u64,
    start_cycle: u64,
    hook: &H,
) {
    let cycle = gpu.app_cycle();
    hook.count(
        "campaign_watchdog_cycles_total",
        cycle.saturating_sub(start_cycle),
    );
    hook.event(
        &Event::new("watchdog.fired")
            .field("workload", workload.name())
            .field("device", arch.name.as_str())
            .field("kind", site.kind.as_str())
            .field("site", site.to_string())
            .field("cycle", cycle)
            .field("budget", budget)
            .field("golden_cycles", golden.cycles),
    );
}

/// Drives one replay session to completion, abandoning it early with the
/// golden outputs when `early_exit` is set and a [`MaskProbe`] proves the
/// flip can no longer matter (the flipped word was erased — clean
/// overwrite or per-launch reset — without ever having been read, so the
/// machine state is bit-identical to the fault-free run from that point
/// on). Returns the replay result plus whether the early exit fired.
fn drive_replay(
    session: &mut Session<'_>,
    golden: &GoldenRun,
    site: FaultSite,
    arch: &ArchConfig,
    early_exit: bool,
) -> (Result<Vec<u32>, SimError>, bool) {
    if !early_exit {
        return (session.run_to_completion(&mut NoopObserver), false);
    }
    let mut probe = MaskProbe::new(site, arch.num_sms as usize);
    loop {
        match session.step(&mut probe) {
            Err(e) => return (Err(e), false),
            Ok(SessionStatus::Finished) => {
                let out = session
                    .outputs()
                    .expect("finished session has outputs")
                    .to_vec();
                return (Ok(out), false);
            }
            Ok(SessionStatus::Running) => {
                if probe.provably_masked() {
                    return (Ok(golden.outputs.clone()), true);
                }
            }
        }
    }
}

/// Result of one bit-plane batched replay ([`classify_batch_on`]).
pub(crate) struct BatchReplay {
    /// Per-site outcomes, parallel to the batch slice.
    pub outcomes: Vec<Outcome>,
    /// Lanes that diverged architecturally and re-ran privately.
    pub forks: u32,
    /// Whether the shared pass aborted and the whole batch was
    /// re-classified scalar (a safety net; outcomes are still exact).
    pub fell_back: bool,
}

/// Classifies up to [`simt_sim::MAX_BATCH_SCENARIOS`] transient sites
/// sharing one checkpoint rung in a single shared simulation pass.
///
/// The shared pass replays the fault-free trajectory once with every
/// site's flip held in a sparse overlay lane: physical machine state
/// stays bit-identical to the golden run, and a lane's divergent words
/// live only in overlay cells. A lane **forks** into a private replay
/// the moment its divergence could alter execution — a divergent
/// predicate, a divergent address, any atomic touching an overlaid
/// word, or a host read of one. Because the shared pass *is* the
/// golden trajectory, its periodic snapshots are golden checkpoints: a
/// forked lane resumes from the latest snapshot at or before its fork
/// trigger, materialises its overlay diff into physical state, re-arms
/// its flip if still pending, and runs to completion under the scalar
/// classification rules. A lane that never forks ended bit-identical
/// to the golden run and is `Masked` by construction, so batched
/// tallies are byte-identical to scalar replay.
///
/// # Errors
///
/// Same as [`classify_on`]: a [`SimError::Due`] from a private replay
/// is a classification; anything else propagates. A shared-pass
/// failure (which pure golden replay should never produce) falls back
/// to scalar classification of every site instead of guessing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn classify_batch_on<H: TelemetryHook>(
    gpu: &mut Gpu,
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    batch: &[FaultSite],
    watchdog_factor: u64,
    early_exit: bool,
    ckpt: Option<&Checkpoint>,
    hook: &H,
) -> Result<BatchReplay, SimError> {
    debug_assert!(!batch.is_empty() && batch.len() <= simt_sim::MAX_BATCH_SCENARIOS);
    debug_assert!(batch.iter().all(|s| s.is_transient()));
    let watchdog = golden
        .cycles
        .saturating_mul(watchdog_factor)
        .saturating_add(10_000);
    let start_cycle = ckpt.map_or(0, |ck| ck.cycle());
    debug_assert!(batch.iter().all(|s| s.cycle >= start_cycle));
    // Twice the ladder's rung density: a fork replays the stretch from
    // its snapshot to its trigger for nothing, so a finer stride inside
    // the shared pass directly shrinks that waste (half a stride per
    // fork on average) for a few extra in-memory clones.
    let interval = (golden.cycles / 32).max(1);
    let all_mask = if batch.len() == simt_sim::MAX_BATCH_SCENARIOS {
        u64::MAX
    } else {
        (1u64 << batch.len()) - 1
    };

    // Shared pass. Snapshots are taken *before* stepping, so a fork
    // raised during a step always has a snapshot at or before its
    // trigger cycle; the drain sits at the top of the loop so forks
    // raised by the finishing step's host output reads still land.
    let mut snaps: Vec<Checkpoint> = Vec::new();
    let mut fork_snap = vec![0usize; batch.len()];
    let mut forked = 0u64;
    let (finished_out, final_sdc, shared_broke, shared_end, shared_instr) = {
        let mut session = match ckpt {
            Some(ck) => Session::resume(&mut *gpu, ck),
            None => {
                *gpu = Gpu::new(arch.clone());
                Session::new(&mut *gpu, workload.plan())
            }
        };
        let base = if H::ENABLED {
            session.gpu().exec_totals().warp_instructions
        } else {
            0
        };
        session.gpu_mut().set_watchdog(watchdog);
        session.arm_scenarios(batch);
        snaps.push(session.snapshot());
        let mut next_snap = session.gpu().app_cycle() + interval;
        let mut finished_out: Option<Vec<u32>> = None;
        let mut broke = false;
        loop {
            let new = session.take_scenario_forks();
            if new != 0 {
                let snap_idx = snaps.len() - 1;
                let mut m = new;
                while m != 0 {
                    fork_snap[m.trailing_zeros() as usize] = snap_idx;
                    m &= m - 1;
                }
                forked |= new;
            }
            if finished_out.is_some() || forked == all_mask {
                break;
            }
            if session.gpu().app_cycle() >= next_snap {
                snaps.push(session.snapshot());
                next_snap = session.gpu().app_cycle() + interval;
            }
            match session.step(&mut NoopObserver) {
                Ok(SessionStatus::Running) => {}
                Ok(SessionStatus::Finished) => {
                    finished_out = Some(
                        session
                            .outputs()
                            .expect("finished session has outputs")
                            .to_vec(),
                    );
                }
                Err(_) => {
                    broke = true;
                    break;
                }
            }
        }
        let instr = if H::ENABLED {
            session
                .gpu()
                .exec_totals()
                .warp_instructions
                .saturating_sub(base)
        } else {
            0
        };
        let end = session.gpu().app_cycle();
        let final_sdc = session.final_scenario_divergence();
        (finished_out, final_sdc, broke, end, instr)
    };
    if H::ENABLED {
        hook.count(
            "campaign_cycles_replayed_total",
            shared_end.saturating_sub(start_cycle),
        );
        hook.count(
            "campaign_batch_shared_cycles_total",
            shared_end.saturating_sub(start_cycle),
        );
        hook.count(
            "campaign_cycles_saved_total",
            start_cycle.saturating_mul(batch.len() as u64),
        );
        hook.count("sim_instructions_total", shared_instr);
    }
    // A shared pass that finished must have reproduced the golden output
    // bit for bit — it executes the fault-free trajectory. Anything else
    // is a harness bug; classify the whole batch scalar for safety.
    let broken = shared_broke || matches!(&finished_out, Some(out) if out != &golden.outputs);
    if broken {
        gpu.clear_scenarios();
        let mut outcomes = Vec::with_capacity(batch.len());
        for &site in batch {
            outcomes.push(classify_on(
                gpu,
                arch,
                workload,
                golden,
                site,
                watchdog_factor,
                early_exit,
                ckpt,
                hook,
            )?);
        }
        return Ok(BatchReplay {
            outcomes,
            forks: forked.count_ones(),
            fell_back: true,
        });
    }

    // Private fork replays, in lane order for a deterministic telemetry
    // stream. An unforked lane's divergence never influenced control
    // flow, addressing, an atomic or host logic, so the shared pass
    // carried its complete faulty execution: if its divergence reached
    // the final output reads it is an SDC outright, otherwise `Masked`
    // — either way the verdict is free.
    let mut outcomes = vec![Outcome::Masked; batch.len()];
    for s in 0..batch.len() {
        if forked >> s & 1 == 0 {
            if final_sdc >> s & 1 == 1 {
                outcomes[s] = Outcome::Sdc;
                if H::ENABLED {
                    hook.count("campaign_batch_final_sdc_total", 1);
                }
            }
            if H::ENABLED {
                hook.count(
                    "campaign_cycles_saved_total",
                    golden.cycles.saturating_sub(start_cycle),
                );
            }
            continue;
        }
        let site = batch[s];
        let snap = &snaps[fork_snap[s]];
        let (result, end_cycle, instr, session_tel) = {
            let mut session = Session::resume(&mut *gpu, snap);
            let base = if H::ENABLED {
                session.gpu().exec_totals().warp_instructions
            } else {
                0
            };
            session.gpu_mut().set_watchdog(watchdog);
            session.gpu_mut().materialize_scenario(s);
            // The snapshot was captured before the fault-application
            // step of its own cycle (rung semantics), so a flip at or
            // past the snapshot cycle is still pending and re-arms
            // scalar; an earlier flip already lives in the overlay diff
            // just materialised.
            if site.cycle >= snap.cycle() {
                session.gpu_mut().arm_fault(site);
            }
            let r = session.run_to_completion(&mut NoopObserver);
            let tel = *session.telemetry();
            let instr = if H::ENABLED {
                session
                    .gpu()
                    .exec_totals()
                    .warp_instructions
                    .saturating_sub(base)
            } else {
                0
            };
            let end = session.gpu().app_cycle();
            (r, end, instr, tel)
        };
        if H::ENABLED {
            hook.count(
                "campaign_cycles_replayed_total",
                end_cycle.saturating_sub(snap.cycle()),
            );
            hook.count(
                "campaign_batch_fork_cycles_total",
                end_cycle.saturating_sub(snap.cycle()),
            );
            hook.count(
                "campaign_cycles_saved_total",
                snap.cycle().saturating_sub(start_cycle),
            );
            hook.count("sim_instructions_total", instr);
            if session_tel.restores > 0 {
                hook.count("sim_restores_total", session_tel.restores);
                hook.observe(
                    "sim_restore_seconds",
                    session_tel.restore_nanos as f64 * 1e-9,
                );
            }
        }
        outcomes[s] = match result {
            Ok(out) if out == golden.outputs => Outcome::Masked,
            Ok(_) => Outcome::Sdc,
            Err(SimError::Due(Due::WatchdogTimeout { .. })) => {
                if H::ENABLED {
                    record_watchdog_kill(
                        gpu,
                        arch,
                        workload,
                        golden,
                        site,
                        watchdog,
                        snap.cycle(),
                        hook,
                    );
                }
                Outcome::Hang
            }
            Err(SimError::Due(_)) => Outcome::Due,
            Err(e) => return Err(e),
        };
    }
    Ok(BatchReplay {
        outcomes,
        forks: forked.count_ones(),
        fell_back: false,
    })
}

/// [`classify_on`] with a [`TraceObserver`] riding along: identical
/// classification (the observer is passive), plus a per-injection
/// [`TraceRecord`] of how the corruption propagated. `golden_writes` is
/// the golden run's global-store stream captured by
/// [`simt_sim::GlobalWriteLog`].
///
/// # Errors
///
/// Same as [`classify_on`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn classify_traced_on<H: TelemetryHook>(
    gpu: &mut Gpu,
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    golden_writes: &[GlobalWrite],
    site: FaultSite,
    watchdog_factor: u64,
    ckpt: Option<&Checkpoint>,
    hook: &H,
) -> Result<(Outcome, TraceRecord), SimError> {
    // Saturating: a pathological `watchdog_factor` (up to `u64::MAX`)
    // clamps to an effectively-infinite budget instead of overflowing.
    let watchdog = golden
        .cycles
        .saturating_mul(watchdog_factor)
        .saturating_add(10_000);
    let resume_cycle = ckpt.map_or(0, |ck| ck.cycle());
    let mut tracer = TraceObserver::new(site, arch.num_sms as usize, golden_writes, resume_cycle);
    let (result, start_cycle, base_instructions, session_tel) = match ckpt {
        Some(ck) => {
            let mut session = Session::resume(&mut *gpu, ck);
            let base = if H::ENABLED {
                session.gpu().exec_totals().warp_instructions
            } else {
                0
            };
            session.gpu_mut().set_watchdog(watchdog);
            session.gpu_mut().arm_fault(site);
            let r = session.run_to_completion(&mut tracer);
            let tel = *session.telemetry();
            (r, ck.cycle(), base, tel)
        }
        None => {
            *gpu = Gpu::new(arch.clone());
            gpu.set_watchdog(watchdog);
            gpu.arm_fault(site);
            let r = workload.run(gpu, &mut tracer);
            (r, 0, 0, simt_sim::SessionTelemetry::default())
        }
    };
    if H::ENABLED {
        hook.count(
            "campaign_cycles_replayed_total",
            gpu.app_cycle().saturating_sub(start_cycle),
        );
        hook.count("campaign_cycles_saved_total", start_cycle);
        hook.count(
            "sim_instructions_total",
            gpu.exec_totals()
                .warp_instructions
                .saturating_sub(base_instructions),
        );
        if session_tel.restores > 0 {
            hook.count("sim_restores_total", session_tel.restores);
            hook.observe(
                "sim_restore_seconds",
                session_tel.restore_nanos as f64 * 1e-9,
            );
        }
    }
    let outcome = match result {
        Ok(out) if out == golden.outputs => Outcome::Masked,
        Ok(_) => Outcome::Sdc,
        Err(SimError::Due(Due::WatchdogTimeout { .. })) => {
            if H::ENABLED {
                record_watchdog_kill(
                    gpu,
                    arch,
                    workload,
                    golden,
                    site,
                    watchdog,
                    start_cycle,
                    hook,
                );
            }
            Outcome::Hang
        }
        Err(SimError::Due(_)) => Outcome::Due,
        Err(e) => return Err(e),
    };
    Ok((outcome, tracer.into_record(arch.lds_banks)))
}

/// Runs a full statistical fault-injection campaign.
///
/// Deterministic for a given `(arch, workload, structure, cfg)` ensemble
/// regardless of `cfg.threads` and of the checkpoint tuning.
///
/// # Errors
///
/// Fails if the fault-free golden run fails, or if a replay fails with a
/// non-DUE simulator error (which indicates a harness bug, not a fault
/// effect).
///
/// # Example
/// ```
/// use grel_core::campaign::{run_campaign, CampaignConfig};
/// use gpu_workloads::VectorAdd;
/// use gpu_archs::quadro_fx_5600;
/// use simt_sim::Structure;
///
/// let mut cfg = CampaignConfig::quick(7);
/// cfg.injections = 24;
/// let r = run_campaign(
///     &quadro_fx_5600(),
///     &VectorAdd::new(256, 7),
///     Structure::VectorRegisterFile,
///     cfg,
/// )?;
/// assert_eq!(r.tally.total(), 24);
/// # Ok::<(), simt_sim::SimError>(())
/// ```
pub fn run_campaign(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
) -> Result<CampaignResult, SimError> {
    run_campaign_hooked(arch, workload, structure, cfg, &NoopHook)
}

/// [`run_campaign`] with full telemetry through `hook`. Outcomes are
/// identical to the unhooked call — the hook only observes.
///
/// # Errors
///
/// Same as [`run_campaign`].
pub fn run_campaign_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    hook: &H,
) -> Result<CampaignResult, SimError> {
    let golden = golden_run_hooked(arch, workload, hook)?;
    run_campaign_with_golden_hooked(arch, workload, structure, cfg, &golden, hook)
}

/// [`run_campaign`] against an already-captured golden run (saves the
/// fault-free replay when several campaigns share one workload). Builds
/// its own [`CheckpointLadder`]; callers running several structures over
/// one golden run should build the ladder once and use
/// [`run_campaign_with_ladder`].
///
/// # Errors
///
/// Propagates replay failures that are not fault classifications.
pub fn run_campaign_with_golden(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    golden: &GoldenRun,
) -> Result<CampaignResult, SimError> {
    run_campaign_with_golden_hooked(arch, workload, structure, cfg, golden, &NoopHook)
}

/// [`run_campaign_with_golden`] with full telemetry through `hook`.
///
/// # Errors
///
/// Same as [`run_campaign_with_golden`].
pub fn run_campaign_with_golden_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    golden: &GoldenRun,
    hook: &H,
) -> Result<CampaignResult, SimError> {
    let ladder = CheckpointLadder::build_hooked(arch, workload, golden, &cfg, hook)?;
    run_campaign_with_ladder_hooked(arch, workload, structure, cfg, golden, &ladder, hook)
}

/// [`run_campaign`] against a shared golden run and checkpoint ladder.
///
/// # Errors
///
/// Propagates replay failures that are not fault classifications.
pub fn run_campaign_with_ladder(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    golden: &GoldenRun,
    ladder: &CheckpointLadder,
) -> Result<CampaignResult, SimError> {
    run_campaign_with_ladder_hooked(arch, workload, structure, cfg, golden, ladder, &NoopHook)
}

/// [`run_campaign_with_ladder`] with full telemetry through `hook`:
/// per-outcome counters, per-injection latency, rung-hit distribution,
/// replay cycles saved vs from-zero, throughput and a `campaign.done`
/// event.
///
/// When `cfg.prune` is set this captures a [`LifetimeOracle`] from one
/// extra instrumented fault-free run and delegates to
/// [`run_campaign_with_oracle_hooked`]; callers evaluating several
/// structures over one golden run (like [`crate::study`]) should capture
/// the oracle once themselves and call that entry point directly.
///
/// # Errors
///
/// Same as [`run_campaign_with_ladder`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_with_ladder_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    golden: &GoldenRun,
    ladder: &CheckpointLadder,
    hook: &H,
) -> Result<CampaignResult, SimError> {
    // The lifetime oracle's dead-interval argument only holds for
    // transient flips (a stuck-at fault survives the overwrite that
    // would end a live interval; a control fault has no storage word),
    // so non-transient models skip the instrumented capture run
    // entirely. `LifetimeOracle::is_dead` is also kind-gated, so even a
    // caller-supplied oracle can never prune a non-transient site.
    let oracle = if cfg.prune && cfg.fault_model == FaultModelKind::Transient {
        let span_started = H::SPANS.then(Instant::now);
        let oracle = LifetimeOracle::capture(arch, workload)?;
        if let Some(t0) = span_started {
            hook.span(&SpanRecord::new(
                format!("point:{}@{}/oracle", workload.name(), arch.name),
                0,
                PHASE_ORACLE,
                t0,
            ));
        }
        Some(oracle)
    } else {
        None
    };
    run_campaign_with_oracle_hooked(
        arch,
        workload,
        structure,
        cfg,
        golden,
        ladder,
        oracle.as_ref(),
        hook,
    )
}

/// [`run_campaign_with_ladder_hooked`] against a shared
/// [`LifetimeOracle`]: sampled sites falling outside every live interval
/// of their word are pre-classified as `Masked` without a replay (rung
/// label `pruned`), and only the live remainder fans out to the worker
/// pool. Pruning is exact — tallies are bit-identical to an unpruned run
/// at any job count — because a pruned flip is erased before any read
/// could propagate it. Passing `None` disables pruning regardless of
/// `cfg.prune` (and arms the per-replay early-exit probe when
/// `cfg.early_exit` is set; with an oracle the probe is redundant, since
/// every replayed site is read before its first clean overwrite).
///
/// # Errors
///
/// Same as [`run_campaign_with_ladder`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_with_oracle_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    cfg: CampaignConfig,
    golden: &GoldenRun,
    ladder: &CheckpointLadder,
    oracle: Option<&LifetimeOracle>,
    hook: &H,
) -> Result<CampaignResult, SimError> {
    let started = H::ENABLED.then(Instant::now);
    let sites = sample_model_sites(
        arch,
        structure,
        cfg.fault_model,
        golden.cycles,
        cfg.injections,
        cfg.seed,
    );
    let outcomes = replay_sites(arch, workload, golden, &sites, cfg, ladder, oracle, hook)?;
    let mut tally = Tally::default();
    for o in outcomes {
        tally.add(o);
    }
    let population = campaign_population(arch, structure, cfg.fault_model, golden.cycles);
    let result = CampaignResult {
        structure,
        tally,
        golden_cycles: golden.cycles,
        population,
        margin_99: campaign_margin(population, tally.total()),
    };
    if let Some(started) = started {
        let seconds = started.elapsed().as_secs_f64();
        let per_second = if seconds > 0.0 {
            tally.total() as f64 / seconds
        } else {
            0.0
        };
        let pruned = oracle.map_or(0u64, |o| {
            sites.iter().filter(|&&s| o.is_dead(s)).count() as u64
        });
        hook.observe("campaign_seconds", seconds);
        hook.gauge("campaign_injections_per_second", per_second);
        hook.event(
            &Event::new("campaign.done")
                .field("workload", workload.name())
                .field("device", arch.name.as_str())
                .field("structure", structure.to_string())
                .field("fault_kind", cfg.fault_model.as_str())
                .field("injections", tally.total())
                .field("masked", tally.masked)
                .field("sdc", tally.sdc)
                .field("due", tally.due)
                .field("hang", tally.hang)
                .field("avf", result.avf())
                .field("golden_cycles", golden.cycles)
                .field("ladder_rungs", ladder.len())
                .field("pruned", pruned)
                .field("early_exit", cfg.early_exit && oracle.is_none())
                .field("seconds", seconds)
                .field("injections_per_second", per_second),
        );
        if H::SPANS {
            hook.span(
                &SpanRecord::new(
                    format!(
                        "point:{}@{}/campaign:{}",
                        workload.name(),
                        arch.name,
                        structure_label(structure)
                    ),
                    0,
                    campaign_phase_seq(structure),
                    started,
                )
                .tag("kind", cfg.fault_model.as_str())
                .tag("injections", tally.total())
                .tag("pruned", pruned),
            );
        }
    }
    Ok(result)
}

/// Replays every site from cycle zero, fanning out across threads;
/// outcome order matches the site order.
///
/// # Errors
///
/// Propagates replay failures that are not fault classifications.
pub fn run_injections(
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    sites: &[FaultSite],
    cfg: CampaignConfig,
) -> Result<Vec<Outcome>, SimError> {
    replay_sites(
        arch,
        workload,
        golden,
        sites,
        cfg,
        &CheckpointLadder::empty(),
        None,
        &NoopHook,
    )
}

/// [`run_injections`] resuming each replay from the nearest ladder rung
/// at or before its fault cycle. Outcomes are byte-identical to from-zero
/// replay; only wall-clock time changes.
///
/// # Errors
///
/// Propagates replay failures that are not fault classifications.
pub fn run_injections_checkpointed(
    arch: &ArchConfig,
    workload: &dyn Workload,
    golden: &GoldenRun,
    ladder: &CheckpointLadder,
    sites: &[FaultSite],
    cfg: CampaignConfig,
) -> Result<Vec<Outcome>, SimError> {
    replay_sites(arch, workload, golden, sites, cfg, ladder, None, &NoopHook)
}

/// [`run_campaign`] with an explicit worker count, overriding
/// `cfg.threads`: the injection replays fan out over a scoped pool of
/// `jobs` workers (see [`crate::runner`] for the determinism contract).
/// Results are bit-identical at any job count.
///
/// # Errors
///
/// Same as [`run_campaign`].
pub fn run_campaign_parallel(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    mut cfg: CampaignConfig,
    jobs: usize,
) -> Result<CampaignResult, SimError> {
    cfg.threads = jobs.max(1);
    run_campaign(arch, workload, structure, cfg)
}

/// [`run_campaign_parallel`] with full telemetry through `hook`,
/// including the `campaign_workers` gauge and per-worker throughput
/// series.
///
/// # Errors
///
/// Same as [`run_campaign`].
pub fn run_campaign_parallel_hooked<H: TelemetryHook>(
    arch: &ArchConfig,
    workload: &dyn Workload,
    structure: Structure,
    mut cfg: CampaignConfig,
    jobs: usize,
    hook: &H,
) -> Result<CampaignResult, SimError> {
    cfg.threads = jobs.max(1);
    run_campaign_hooked(arch, workload, structure, cfg, hook)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::quadro_fx_5600;
    use gpu_workloads::{Histogram, VectorAdd};

    fn small_cfg(n: u32) -> CampaignConfig {
        CampaignConfig {
            injections: n,
            seed: 99,
            threads: 2,
            watchdog_factor: 10,
            checkpoint_interval: 0,
            checkpoint_budget_bytes: 0,
            prune: true,
            early_exit: true,
            fault_model: FaultModelKind::Transient,
            batch: true,
            convergence: 0,
        }
    }

    #[test]
    fn golden_run_matches_reference() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let g = golden_run(&arch, &w).unwrap();
        assert_eq!(g.outputs, w.reference());
        assert!(g.cycles > 0);
    }

    #[test]
    fn sites_are_deterministic_and_in_range() {
        let arch = quadro_fx_5600();
        let a = sample_sites(&arch, Structure::VectorRegisterFile, 1000, 50, 7);
        let b = sample_sites(&arch, Structure::VectorRegisterFile, 1000, 50, 7);
        assert_eq!(a, b);
        for s in &a {
            assert!(s.sm < arch.num_sms);
            assert!(s.word < arch.rf_words_per_sm());
            assert!(s.bit < 32);
            assert!(s.cycle < 1000);
        }
        let c = sample_sites(&arch, Structure::VectorRegisterFile, 1000, 50, 8);
        assert_ne!(a, c, "different seed, different sites");
    }

    #[test]
    #[should_panic(expected = "no scalar register file")]
    fn sampling_missing_structure_panics() {
        let arch = quadro_fx_5600();
        let _ = sample_sites(&arch, Structure::ScalarRegisterFile, 100, 1, 0);
    }

    #[test]
    fn campaign_tally_sums_and_is_thread_invariant() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let mut cfg = small_cfg(16);
        let r1 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(r1.tally.total(), 16);
        cfg.threads = 1;
        let r2 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(r1.tally, r2.tally, "threading must not change outcomes");
        assert!(r1.avf() >= 0.0 && r1.avf() <= 1.0);
        assert!(r1.margin_99 > 0.0);
    }

    #[test]
    fn injections_into_lds_classify() {
        let arch = quadro_fx_5600();
        let w = Histogram::new(1024, 64, 5);
        let r = run_campaign(&arch, &w, Structure::LocalMemory, small_cfg(12)).unwrap();
        assert_eq!(r.tally.total(), 12);
    }

    #[test]
    fn shard_merge_tightens_margin() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let a = run_campaign(&arch, &w, Structure::VectorRegisterFile, small_cfg(16)).unwrap();
        let b = run_campaign(
            &arch,
            &w,
            Structure::VectorRegisterFile,
            CampaignConfig {
                seed: 123,
                ..small_cfg(16)
            },
        )
        .unwrap();
        let m = a.merge(&b);
        assert_eq!(m.tally.total(), 32);
        assert!(m.margin_99 < a.margin_99);
        assert_eq!(m.golden_cycles, a.golden_cycles);
    }

    #[test]
    fn ladder_rungs_are_ordered_and_bounded() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let golden = golden_run(&arch, &w).unwrap();
        let ladder = CheckpointLadder::build(&arch, &w, &golden, &small_cfg(4)).unwrap();
        assert!(!ladder.is_empty(), "auto spacing must leave rungs");
        let cycles: Vec<u64> = (0..golden.cycles)
            .filter_map(|c| ladder.nearest(c).map(|ck| ck.cycle()))
            .collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "rungs sorted by cycle"
        );
        assert!(cycles.iter().all(|&c| c < golden.cycles));
        assert!(ladder.total_bytes() > 0);
        // nearest() never returns a rung past the requested cycle.
        let first = ladder.nearest(u64::MAX).unwrap().cycle();
        assert!(ladder.nearest(first).unwrap().cycle() <= first);
        assert!(ladder.nearest(0).is_none(), "no rung at or before cycle 0");
    }

    #[test]
    fn checkpointed_replay_matches_from_zero() {
        let arch = quadro_fx_5600();
        let w = Histogram::new(1024, 64, 5);
        let golden = golden_run(&arch, &w).unwrap();
        let cfg = small_cfg(16);
        let sites = sample_sites(
            &arch,
            Structure::LocalMemory,
            golden.cycles,
            cfg.injections,
            cfg.seed,
        );
        let ladder = CheckpointLadder::build(&arch, &w, &golden, &cfg).unwrap();
        let from_zero = run_injections(&arch, &w, &golden, &sites, cfg).unwrap();
        let from_ckpt =
            run_injections_checkpointed(&arch, &w, &golden, &ladder, &sites, cfg).unwrap();
        assert_eq!(
            from_zero, from_ckpt,
            "checkpoint resume must not change outcomes"
        );
    }

    #[test]
    fn tiny_budget_degrades_to_fewer_rungs_not_wrong_answers() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let golden = golden_run(&arch, &w).unwrap();
        let mut cfg = small_cfg(8);
        cfg.checkpoint_budget_bytes = 1; // no snapshot fits
        let ladder = CheckpointLadder::build(&arch, &w, &golden, &cfg).unwrap();
        assert!(ladder.is_empty(), "a one-byte budget holds no snapshot");
        let r = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        cfg.checkpoint_budget_bytes = 0;
        let r2 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(r.tally, r2.tally, "budget tuning must not change outcomes");
    }

    #[test]
    fn hooked_campaign_matches_noop_and_accounts_for_every_injection() {
        use grel_telemetry::{MetricsRegistry, RegistryHook};
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let cfg = small_cfg(12);
        let plain = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();

        let reg = MetricsRegistry::new();
        let hook = RegistryHook::new(&reg);
        let hooked =
            run_campaign_hooked(&arch, &w, Structure::VectorRegisterFile, cfg, &hook).unwrap();
        assert_eq!(plain.tally, hooked.tally, "the hook must only observe");
        assert_eq!(plain.golden_cycles, hooked.golden_cycles);

        let snap = reg.snapshot();
        let by_outcome: u64 = Outcome::ALL
            .iter()
            .map(Outcome::as_str)
            .filter_map(|o| snap.counter(&format!("campaign_injections_total{{outcome=\"{o}\"}}")))
            .sum();
        assert_eq!(by_outcome, 12, "every injection lands in one outcome");
        let by_rung: u64 = snap
            .counters()
            .filter(|(n, _)| n.starts_with("campaign_rung_hits_total"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(by_rung, 12, "every injection hits exactly one rung bin");
        assert_eq!(
            snap.histogram("campaign_injection_seconds")
                .unwrap()
                .count(),
            12
        );
        assert!(
            snap.counter("campaign_cycles_saved_total").unwrap_or(0) > 0,
            "checkpoint resume must save cycles on this workload"
        );
        assert!(snap.gauge("ladder_rungs").unwrap_or(0.0) > 0.0);
        assert!(snap.histogram("campaign_seconds").unwrap().count() == 1);
    }

    #[test]
    fn proportion_uses_population() {
        let r = CampaignResult {
            structure: Structure::VectorRegisterFile,
            tally: Tally {
                masked: 89,
                sdc: 8,
                due: 2,
                hang: 1,
            },
            golden_cycles: 1_000_000,
            population: 1 << 40,
            margin_99: 0.1,
        };
        assert!((r.avf() - 0.11).abs() < 1e-12, "hangs count as failures");
        assert!((r.avf_sdc() - 0.08).abs() < 1e-12);
        let p = r.proportion().unwrap();
        assert_eq!(p.hits, 11);
        assert_eq!(p.trials, 100);
        assert_eq!(
            p.margin_99.to_bits(),
            error_margin(1 << 40, 100, Z_99).to_bits(),
            "proportion margin uses the campaign's finite population"
        );
    }

    #[test]
    fn empty_campaign_reports_no_estimate() {
        let r = CampaignResult {
            structure: Structure::VectorRegisterFile,
            tally: Tally::default(),
            golden_cycles: 1000,
            population: 1 << 30,
            margin_99: 0.0,
        };
        assert_eq!(r.avf(), 0.0);
        assert!(r.proportion().is_none(), "zero trials is not an estimate");
        let m = r.merge(&r);
        assert_eq!(m.tally.total(), 0);
        assert_eq!(m.margin_99, 0.0, "merged empty shards stay estimate-free");
    }

    #[test]
    fn merged_margin_uses_the_finite_population() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let a = run_campaign(&arch, &w, Structure::VectorRegisterFile, small_cfg(16)).unwrap();
        let b = run_campaign(
            &arch,
            &w,
            Structure::VectorRegisterFile,
            CampaignConfig {
                seed: 321,
                ..small_cfg(16)
            },
        )
        .unwrap();
        let m = a.merge(&b);
        assert_eq!(m.population, a.population);
        assert_eq!(
            m.margin_99.to_bits(),
            error_margin(a.population, 32, Z_99).to_bits(),
            "merged margin must use the shards' shared population, not u64::MAX"
        );
    }

    #[test]
    fn sampled_sites_are_distinct() {
        let arch = quadro_fx_5600();
        // A deliberately tiny window so with-replacement sampling would
        // collide with near-certainty (population = num_sms·words·32·2).
        let sites = sample_sites(&arch, Structure::VectorRegisterFile, 2, 500, 13);
        let unique: std::collections::HashSet<_> = sites.iter().copied().collect();
        assert_eq!(unique.len(), sites.len(), "sites must be distinct");
    }

    #[test]
    fn sampling_the_whole_population_yields_a_permutation() {
        // The Fisher–Yates index map stays O(n) even at the degenerate
        // extreme n == population, where the draw must visit every site
        // exactly once.
        let mut arch = quadro_fx_5600();
        arch.num_sms = 2;
        arch.regfile_bytes_per_sm = 8; // two words: population = 2·2·32·2
        let population = 2 * 2 * 32 * 2;
        let sites = sample_sites(&arch, Structure::VectorRegisterFile, 2, population, 41);
        assert_eq!(sites.len(), population as usize);
        let unique: std::collections::HashSet<_> = sites.iter().copied().collect();
        assert_eq!(unique.len(), sites.len(), "a full draw is a permutation");
        for s in &sites {
            assert!(s.sm < 2 && s.word < 2 && s.bit < 32 && s.cycle < 2);
        }
    }

    #[test]
    fn transient_model_sampling_matches_legacy_sampler() {
        let arch = quadro_fx_5600();
        let legacy = sample_sites(&arch, Structure::VectorRegisterFile, 500, 40, 3);
        let model = sample_model_sites(
            &arch,
            Structure::VectorRegisterFile,
            FaultModelKind::Transient,
            500,
            40,
            3,
        );
        assert_eq!(legacy, model, "default model must be bit-identical");
        assert!(model.iter().all(|s| s.is_transient()));
    }

    #[test]
    fn stuck_model_reuses_the_storage_population() {
        let arch = quadro_fx_5600();
        let flips = sample_sites(&arch, Structure::VectorRegisterFile, 500, 40, 3);
        let stuck = sample_model_sites(
            &arch,
            Structure::VectorRegisterFile,
            FaultModelKind::Stuck1,
            500,
            40,
            3,
        );
        // Same coordinates (a permanent fault still names a storage cell
        // and an onset cycle), different kind.
        for (f, s) in flips.iter().zip(&stuck) {
            assert_eq!(
                (f.structure, f.sm, f.word, f.bit, f.cycle),
                (s.structure, s.sm, s.word, s.bit, s.cycle)
            );
            assert_eq!(s.kind, FaultKind::StuckAt1);
        }
    }

    #[test]
    fn control_sites_are_deterministic_and_in_range() {
        let arch = quadro_fx_5600();
        let a = sample_model_sites(
            &arch,
            Structure::VectorRegisterFile,
            FaultModelKind::Control,
            1000,
            60,
            7,
        );
        let b = sample_model_sites(
            &arch,
            Structure::VectorRegisterFile,
            FaultModelKind::Control,
            1000,
            60,
            7,
        );
        assert_eq!(a, b);
        let mut targets_seen = std::collections::HashSet::new();
        for s in &a {
            assert!(s.sm < arch.num_sms);
            assert!(s.word < arch.max_warps_per_sm, "word is the warp slot");
            assert!(s.bit < 32);
            assert!(s.cycle < 1000);
            match s.kind {
                FaultKind::Control(t) => {
                    targets_seen.insert(t);
                }
                k => panic!("control model sampled a {k} site"),
            }
        }
        assert!(
            targets_seen.len() >= 2,
            "60 draws should cover several targets"
        );
    }

    #[test]
    fn control_campaign_on_barrier_workload_produces_hangs_or_dues() {
        use gpu_workloads::Reduction;
        // A small device saturated by the workload: 8 blocks of 4 warps
        // fill both SMs' 16 warp slots, so sampled control sites mostly
        // land on *live* scheduler/mask/barrier state.
        let arch = ArchConfig::small_test_gpu();
        let w = Reduction::new(256, 32, 5);
        let mut cfg = small_cfg(32);
        cfg.fault_model = FaultModelKind::Control;
        let r = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(r.tally.total(), 32);
        assert!(
            r.tally.hang + r.tally.due > 0,
            "corrupting live scheduler/barrier state must produce a hang or DUE: {:?}",
            r.tally
        );
        // Determinism across job counts for the new model.
        cfg.threads = 1;
        let r1 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(r.tally, r1.tally, "control model must stay deterministic");
    }

    #[test]
    fn stuck_campaign_runs_deterministically() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let mut cfg = small_cfg(16);
        cfg.fault_model = FaultModelKind::Stuck1;
        let r2 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        cfg.threads = 1;
        let r1 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(r2.tally, r1.tally);
        assert_eq!(r2.tally.total(), 16);
    }

    #[test]
    fn watchdog_budget_saturates_instead_of_overflowing() {
        // `golden_cycles · u64::MAX + 10_000` would overflow; the budget
        // must clamp to "effectively never" and the campaign complete.
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let mut cfg = small_cfg(8);
        cfg.watchdog_factor = u64::MAX;
        let r = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(r.tally.total(), 8);
        cfg.watchdog_factor = 10;
        let r2 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(
            r.tally, r2.tally,
            "a clamped budget must not reclassify non-hanging runs"
        );
    }

    #[test]
    fn batched_campaign_matches_scalar() {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        for prune in [false, true] {
            let mut cfg = small_cfg(24);
            cfg.prune = prune;
            cfg.batch = true;
            let batched = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
            cfg.batch = false;
            let scalar = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
            assert_eq!(
                batched.tally, scalar.tally,
                "batching must not change outcomes (prune = {prune})"
            );
        }
    }

    #[test]
    fn oversampling_saturates_to_the_full_population() {
        let mut arch = quadro_fx_5600();
        arch.num_sms = 1;
        arch.regfile_bytes_per_sm = 4; // one word: population = 32 * cycles
        let sites = sample_sites(&arch, Structure::VectorRegisterFile, 2, 1000, 0);
        assert_eq!(sites.len(), 64, "request above the population saturates");
        let mut seen: Vec<_> = sites
            .iter()
            .map(|s| (s.sm, s.word, s.bit, s.cycle))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64, "saturated draw is exhaustive and distinct");
    }
}
