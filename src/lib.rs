//! Umbrella crate for the ISPASS 2017 GPU reliability reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use a single dependency:
//!
//! * [`isa`] — the MASS SIMT instruction set ([`simt_isa`]);
//! * [`sim`] — the cycle-level SIMT GPU simulator ([`simt_sim`]);
//! * [`archs`] — the four modelled GPU devices ([`gpu_archs`]);
//! * [`workloads`] — the ten benchmarks ([`gpu_workloads`]);
//! * [`reliability`] — fault injection, ACE analysis, AVF/EPF
//!   ([`grel_core`]).
//!
//! # Example
//!
//! ```
//! use gpu_reliability_repro::archs::geforce_gtx_480;
//! let arch = geforce_gtx_480();
//! assert_eq!(arch.warp_size, 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gpu_archs as archs;
pub use gpu_workloads as workloads;
pub use grel_core as reliability;
pub use simt_isa as isa;
pub use simt_sim as sim;
