/root/repo/target/release/deps/gpu_archs-39ea6a2c204ccc78.d: crates/archs/src/lib.rs

/root/repo/target/release/deps/libgpu_archs-39ea6a2c204ccc78.rlib: crates/archs/src/lib.rs

/root/repo/target/release/deps/libgpu_archs-39ea6a2c204ccc78.rmeta: crates/archs/src/lib.rs

crates/archs/src/lib.rs:
