/root/repo/target/release/deps/repro-0de4a5dc45e9c35c.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-0de4a5dc45e9c35c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
