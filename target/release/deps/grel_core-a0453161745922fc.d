/root/repo/target/release/deps/grel_core-a0453161745922fc.d: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

/root/repo/target/release/deps/libgrel_core-a0453161745922fc.rlib: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

/root/repo/target/release/deps/libgrel_core-a0453161745922fc.rmeta: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ace.rs:
crates/core/src/breakdown.rs:
crates/core/src/campaign.rs:
crates/core/src/epf.rs:
crates/core/src/perf.rs:
crates/core/src/protection.rs:
crates/core/src/stats.rs:
crates/core/src/study.rs:
