/root/repo/target/release/deps/serde-215e2f2fbd0e29ea.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-215e2f2fbd0e29ea.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-215e2f2fbd0e29ea.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
