/root/repo/target/release/deps/simt_isa-0c26c6db8498e1e2.d: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libsimt_isa-0c26c6db8498e1e2.rlib: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libsimt_isa-0c26c6db8498e1e2.rmeta: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/cfg.rs:
crates/isa/src/error.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/lower.rs:
crates/isa/src/op.rs:
crates/isa/src/parse.rs:
crates/isa/src/reg.rs:
