/root/repo/target/release/deps/proptest-c3ce2a81771d45cb.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c3ce2a81771d45cb.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c3ce2a81771d45cb.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
