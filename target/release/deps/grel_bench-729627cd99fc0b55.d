/root/repo/target/release/deps/grel_bench-729627cd99fc0b55.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgrel_bench-729627cd99fc0b55.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgrel_bench-729627cd99fc0b55.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
