/root/repo/target/release/deps/gpu_workloads-cc068285f9ed5019.d: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs

/root/repo/target/release/deps/libgpu_workloads-cc068285f9ed5019.rlib: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs

/root/repo/target/release/deps/libgpu_workloads-cc068285f9ed5019.rmeta: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs

crates/kernels/src/lib.rs:
crates/kernels/src/backprop.rs:
crates/kernels/src/common.rs:
crates/kernels/src/dwt.rs:
crates/kernels/src/gaussian.rs:
crates/kernels/src/histogram.rs:
crates/kernels/src/kmeans.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/reduction.rs:
crates/kernels/src/scan.rs:
crates/kernels/src/transpose.rs:
crates/kernels/src/vectoradd.rs:
