/root/repo/target/release/deps/gpu_reliability_repro-ca9eabeca5586a03.d: src/lib.rs

/root/repo/target/release/deps/libgpu_reliability_repro-ca9eabeca5586a03.rlib: src/lib.rs

/root/repo/target/release/deps/libgpu_reliability_repro-ca9eabeca5586a03.rmeta: src/lib.rs

src/lib.rs:
