/root/repo/target/release/examples/avf_study-e1c0576d39969c27.d: examples/avf_study.rs

/root/repo/target/release/examples/avf_study-e1c0576d39969c27: examples/avf_study.rs

examples/avf_study.rs:
