/root/repo/target/debug/examples/custom_kernel-4d00fc528ff38967.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-4d00fc528ff38967: examples/custom_kernel.rs

examples/custom_kernel.rs:
