/root/repo/target/debug/examples/epf_comparison-baf101b55a0fc694.d: examples/epf_comparison.rs

/root/repo/target/debug/examples/epf_comparison-baf101b55a0fc694: examples/epf_comparison.rs

examples/epf_comparison.rs:
