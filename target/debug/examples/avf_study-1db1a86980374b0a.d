/root/repo/target/debug/examples/avf_study-1db1a86980374b0a.d: examples/avf_study.rs Cargo.toml

/root/repo/target/debug/examples/libavf_study-1db1a86980374b0a.rmeta: examples/avf_study.rs Cargo.toml

examples/avf_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
