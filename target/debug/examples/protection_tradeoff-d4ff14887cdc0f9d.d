/root/repo/target/debug/examples/protection_tradeoff-d4ff14887cdc0f9d.d: examples/protection_tradeoff.rs Cargo.toml

/root/repo/target/debug/examples/libprotection_tradeoff-d4ff14887cdc0f9d.rmeta: examples/protection_tradeoff.rs Cargo.toml

examples/protection_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
