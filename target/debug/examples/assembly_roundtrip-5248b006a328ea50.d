/root/repo/target/debug/examples/assembly_roundtrip-5248b006a328ea50.d: examples/assembly_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libassembly_roundtrip-5248b006a328ea50.rmeta: examples/assembly_roundtrip.rs Cargo.toml

examples/assembly_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
