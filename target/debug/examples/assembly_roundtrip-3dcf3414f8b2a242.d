/root/repo/target/debug/examples/assembly_roundtrip-3dcf3414f8b2a242.d: examples/assembly_roundtrip.rs

/root/repo/target/debug/examples/assembly_roundtrip-3dcf3414f8b2a242: examples/assembly_roundtrip.rs

examples/assembly_roundtrip.rs:
