/root/repo/target/debug/examples/epf_comparison-842bea8fabc03304.d: examples/epf_comparison.rs

/root/repo/target/debug/examples/epf_comparison-842bea8fabc03304: examples/epf_comparison.rs

examples/epf_comparison.rs:
