/root/repo/target/debug/examples/quickstart-86fd6715b747731a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-86fd6715b747731a: examples/quickstart.rs

examples/quickstart.rs:
