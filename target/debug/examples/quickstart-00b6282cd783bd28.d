/root/repo/target/debug/examples/quickstart-00b6282cd783bd28.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-00b6282cd783bd28: examples/quickstart.rs

examples/quickstart.rs:
