/root/repo/target/debug/examples/assembly_roundtrip-0967e387d6cb872d.d: examples/assembly_roundtrip.rs

/root/repo/target/debug/examples/assembly_roundtrip-0967e387d6cb872d: examples/assembly_roundtrip.rs

examples/assembly_roundtrip.rs:
