/root/repo/target/debug/examples/avf_study-de00adbe5bbda6d4.d: examples/avf_study.rs

/root/repo/target/debug/examples/avf_study-de00adbe5bbda6d4: examples/avf_study.rs

examples/avf_study.rs:
