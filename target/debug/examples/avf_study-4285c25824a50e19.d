/root/repo/target/debug/examples/avf_study-4285c25824a50e19.d: examples/avf_study.rs

/root/repo/target/debug/examples/avf_study-4285c25824a50e19: examples/avf_study.rs

examples/avf_study.rs:
