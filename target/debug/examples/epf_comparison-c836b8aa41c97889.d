/root/repo/target/debug/examples/epf_comparison-c836b8aa41c97889.d: examples/epf_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libepf_comparison-c836b8aa41c97889.rmeta: examples/epf_comparison.rs Cargo.toml

examples/epf_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
