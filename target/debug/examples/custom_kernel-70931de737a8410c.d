/root/repo/target/debug/examples/custom_kernel-70931de737a8410c.d: examples/custom_kernel.rs

/root/repo/target/debug/examples/custom_kernel-70931de737a8410c: examples/custom_kernel.rs

examples/custom_kernel.rs:
