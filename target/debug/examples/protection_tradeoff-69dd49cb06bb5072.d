/root/repo/target/debug/examples/protection_tradeoff-69dd49cb06bb5072.d: examples/protection_tradeoff.rs

/root/repo/target/debug/examples/protection_tradeoff-69dd49cb06bb5072: examples/protection_tradeoff.rs

examples/protection_tradeoff.rs:
