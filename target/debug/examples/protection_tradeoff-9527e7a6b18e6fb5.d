/root/repo/target/debug/examples/protection_tradeoff-9527e7a6b18e6fb5.d: examples/protection_tradeoff.rs

/root/repo/target/debug/examples/protection_tradeoff-9527e7a6b18e6fb5: examples/protection_tradeoff.rs

examples/protection_tradeoff.rs:
