/root/repo/target/debug/deps/proptests-584f30e28388febe.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-584f30e28388febe: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
