/root/repo/target/debug/deps/serde-415a0bccd30510c7.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-415a0bccd30510c7: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
