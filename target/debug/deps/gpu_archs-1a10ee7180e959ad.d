/root/repo/target/debug/deps/gpu_archs-1a10ee7180e959ad.d: crates/archs/src/lib.rs

/root/repo/target/debug/deps/libgpu_archs-1a10ee7180e959ad.rlib: crates/archs/src/lib.rs

/root/repo/target/debug/deps/libgpu_archs-1a10ee7180e959ad.rmeta: crates/archs/src/lib.rs

crates/archs/src/lib.rs:
