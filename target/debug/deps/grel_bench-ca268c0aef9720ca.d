/root/repo/target/debug/deps/grel_bench-ca268c0aef9720ca.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgrel_bench-ca268c0aef9720ca.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
