/root/repo/target/debug/deps/grel_bench-ca1e6686a0ada89f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgrel_bench-ca1e6686a0ada89f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgrel_bench-ca1e6686a0ada89f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
