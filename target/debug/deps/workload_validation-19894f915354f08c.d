/root/repo/target/debug/deps/workload_validation-19894f915354f08c.d: tests/workload_validation.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_validation-19894f915354f08c.rmeta: tests/workload_validation.rs Cargo.toml

tests/workload_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
