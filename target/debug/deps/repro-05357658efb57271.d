/root/repo/target/debug/deps/repro-05357658efb57271.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-05357658efb57271: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
