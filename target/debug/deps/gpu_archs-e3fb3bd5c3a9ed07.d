/root/repo/target/debug/deps/gpu_archs-e3fb3bd5c3a9ed07.d: crates/archs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_archs-e3fb3bd5c3a9ed07.rmeta: crates/archs/src/lib.rs Cargo.toml

crates/archs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
