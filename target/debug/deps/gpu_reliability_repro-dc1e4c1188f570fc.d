/root/repo/target/debug/deps/gpu_reliability_repro-dc1e4c1188f570fc.d: src/lib.rs

/root/repo/target/debug/deps/libgpu_reliability_repro-dc1e4c1188f570fc.rlib: src/lib.rs

/root/repo/target/debug/deps/libgpu_reliability_repro-dc1e4c1188f570fc.rmeta: src/lib.rs

src/lib.rs:
