/root/repo/target/debug/deps/grel_bench-10e888fff8a66b11.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgrel_bench-10e888fff8a66b11.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgrel_bench-10e888fff8a66b11.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
