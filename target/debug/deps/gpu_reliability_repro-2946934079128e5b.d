/root/repo/target/debug/deps/gpu_reliability_repro-2946934079128e5b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_reliability_repro-2946934079128e5b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
