/root/repo/target/debug/deps/repro-1ad29f5086eedb2a.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-1ad29f5086eedb2a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
