/root/repo/target/debug/deps/simt_isa-ddf5048685fa902f.d: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libsimt_isa-ddf5048685fa902f.rmeta: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/cfg.rs:
crates/isa/src/error.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/lower.rs:
crates/isa/src/op.rs:
crates/isa/src/parse.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
