/root/repo/target/debug/deps/repro-74b74ad5087dcd26.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-74b74ad5087dcd26: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
