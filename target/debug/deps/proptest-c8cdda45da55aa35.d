/root/repo/target/debug/deps/proptest-c8cdda45da55aa35.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-c8cdda45da55aa35: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
