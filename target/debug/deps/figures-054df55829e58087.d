/root/repo/target/debug/deps/figures-054df55829e58087.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-054df55829e58087: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
