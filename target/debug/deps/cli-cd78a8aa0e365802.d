/root/repo/target/debug/deps/cli-cd78a8aa0e365802.d: crates/bench/tests/cli.rs

/root/repo/target/debug/deps/cli-cd78a8aa0e365802: crates/bench/tests/cli.rs

crates/bench/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_repro=/root/repo/target/debug/repro
