/root/repo/target/debug/deps/gpu_reliability_repro-1dc2373e77315d09.d: src/lib.rs

/root/repo/target/debug/deps/libgpu_reliability_repro-1dc2373e77315d09.rlib: src/lib.rs

/root/repo/target/debug/deps/libgpu_reliability_repro-1dc2373e77315d09.rmeta: src/lib.rs

src/lib.rs:
