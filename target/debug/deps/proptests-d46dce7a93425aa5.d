/root/repo/target/debug/deps/proptests-d46dce7a93425aa5.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-d46dce7a93425aa5: tests/proptests.rs

tests/proptests.rs:
