/root/repo/target/debug/deps/grel_core-f9ee7f57f19cc1c6.d: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libgrel_core-f9ee7f57f19cc1c6.rlib: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libgrel_core-f9ee7f57f19cc1c6.rmeta: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ace.rs:
crates/core/src/breakdown.rs:
crates/core/src/campaign.rs:
crates/core/src/epf.rs:
crates/core/src/perf.rs:
crates/core/src/protection.rs:
crates/core/src/stats.rs:
crates/core/src/study.rs:
