/root/repo/target/debug/deps/fault_injection-385fcefd4b466340.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-385fcefd4b466340: tests/fault_injection.rs

tests/fault_injection.rs:
