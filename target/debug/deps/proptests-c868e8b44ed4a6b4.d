/root/repo/target/debug/deps/proptests-c868e8b44ed4a6b4.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-c868e8b44ed4a6b4: tests/proptests.rs

tests/proptests.rs:
