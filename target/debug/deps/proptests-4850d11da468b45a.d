/root/repo/target/debug/deps/proptests-4850d11da468b45a.d: crates/isa/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4850d11da468b45a: crates/isa/tests/proptests.rs

crates/isa/tests/proptests.rs:
