/root/repo/target/debug/deps/workload_validation-648f0f7028eafdf2.d: tests/workload_validation.rs

/root/repo/target/debug/deps/workload_validation-648f0f7028eafdf2: tests/workload_validation.rs

tests/workload_validation.rs:
