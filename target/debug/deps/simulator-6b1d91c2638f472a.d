/root/repo/target/debug/deps/simulator-6b1d91c2638f472a.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-6b1d91c2638f472a: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
