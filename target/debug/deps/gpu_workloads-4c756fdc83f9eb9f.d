/root/repo/target/debug/deps/gpu_workloads-4c756fdc83f9eb9f.d: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_workloads-4c756fdc83f9eb9f.rmeta: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/backprop.rs:
crates/kernels/src/common.rs:
crates/kernels/src/dwt.rs:
crates/kernels/src/gaussian.rs:
crates/kernels/src/histogram.rs:
crates/kernels/src/kmeans.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/reduction.rs:
crates/kernels/src/scan.rs:
crates/kernels/src/transpose.rs:
crates/kernels/src/vectoradd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
