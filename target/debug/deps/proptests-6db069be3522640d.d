/root/repo/target/debug/deps/proptests-6db069be3522640d.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6db069be3522640d: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
