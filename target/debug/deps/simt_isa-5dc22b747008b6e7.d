/root/repo/target/debug/deps/simt_isa-5dc22b747008b6e7.d: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/simt_isa-5dc22b747008b6e7: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/cfg.rs:
crates/isa/src/error.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/lower.rs:
crates/isa/src/op.rs:
crates/isa/src/parse.rs:
crates/isa/src/reg.rs:
