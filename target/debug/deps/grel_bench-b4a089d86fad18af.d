/root/repo/target/debug/deps/grel_bench-b4a089d86fad18af.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgrel_bench-b4a089d86fad18af.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
