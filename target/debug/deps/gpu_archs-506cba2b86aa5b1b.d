/root/repo/target/debug/deps/gpu_archs-506cba2b86aa5b1b.d: crates/archs/src/lib.rs

/root/repo/target/debug/deps/gpu_archs-506cba2b86aa5b1b: crates/archs/src/lib.rs

crates/archs/src/lib.rs:
