/root/repo/target/debug/deps/gpu_workloads-7ee5cec8404e839e.d: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs

/root/repo/target/debug/deps/libgpu_workloads-7ee5cec8404e839e.rlib: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs

/root/repo/target/debug/deps/libgpu_workloads-7ee5cec8404e839e.rmeta: crates/kernels/src/lib.rs crates/kernels/src/backprop.rs crates/kernels/src/common.rs crates/kernels/src/dwt.rs crates/kernels/src/gaussian.rs crates/kernels/src/histogram.rs crates/kernels/src/kmeans.rs crates/kernels/src/matmul.rs crates/kernels/src/reduction.rs crates/kernels/src/scan.rs crates/kernels/src/transpose.rs crates/kernels/src/vectoradd.rs

crates/kernels/src/lib.rs:
crates/kernels/src/backprop.rs:
crates/kernels/src/common.rs:
crates/kernels/src/dwt.rs:
crates/kernels/src/gaussian.rs:
crates/kernels/src/histogram.rs:
crates/kernels/src/kmeans.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/reduction.rs:
crates/kernels/src/scan.rs:
crates/kernels/src/transpose.rs:
crates/kernels/src/vectoradd.rs:
