/root/repo/target/debug/deps/simt_sim-857d026cc1494952.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/fault.rs crates/sim/src/gpu.rs crates/sim/src/launch.rs crates/sim/src/mem.rs crates/sim/src/observer.rs crates/sim/src/regfile.rs crates/sim/src/session.rs crates/sim/src/sm.rs crates/sim/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libsimt_sim-857d026cc1494952.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/fault.rs crates/sim/src/gpu.rs crates/sim/src/launch.rs crates/sim/src/mem.rs crates/sim/src/observer.rs crates/sim/src/regfile.rs crates/sim/src/session.rs crates/sim/src/sm.rs crates/sim/src/warp.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/error.rs:
crates/sim/src/fault.rs:
crates/sim/src/gpu.rs:
crates/sim/src/launch.rs:
crates/sim/src/mem.rs:
crates/sim/src/observer.rs:
crates/sim/src/regfile.rs:
crates/sim/src/session.rs:
crates/sim/src/sm.rs:
crates/sim/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
