/root/repo/target/debug/deps/cli-87329dbcdf09785a.d: crates/bench/tests/cli.rs

/root/repo/target/debug/deps/cli-87329dbcdf09785a: crates/bench/tests/cli.rs

crates/bench/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_repro=/root/repo/target/debug/repro
