/root/repo/target/debug/deps/repro-81eb8e9bdc46d1ac.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-81eb8e9bdc46d1ac.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
