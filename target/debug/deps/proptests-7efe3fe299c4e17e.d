/root/repo/target/debug/deps/proptests-7efe3fe299c4e17e.d: crates/isa/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7efe3fe299c4e17e: crates/isa/tests/proptests.rs

crates/isa/tests/proptests.rs:
