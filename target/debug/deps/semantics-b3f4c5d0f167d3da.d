/root/repo/target/debug/deps/semantics-b3f4c5d0f167d3da.d: crates/sim/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-b3f4c5d0f167d3da.rmeta: crates/sim/tests/semantics.rs Cargo.toml

crates/sim/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
