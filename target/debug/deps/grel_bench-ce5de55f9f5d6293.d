/root/repo/target/debug/deps/grel_bench-ce5de55f9f5d6293.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/grel_bench-ce5de55f9f5d6293: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
