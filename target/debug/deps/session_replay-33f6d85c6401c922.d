/root/repo/target/debug/deps/session_replay-33f6d85c6401c922.d: tests/session_replay.rs

/root/repo/target/debug/deps/session_replay-33f6d85c6401c922: tests/session_replay.rs

tests/session_replay.rs:
