/root/repo/target/debug/deps/ace_and_figures-7f7f96ac658b0b9a.d: tests/ace_and_figures.rs

/root/repo/target/debug/deps/ace_and_figures-7f7f96ac658b0b9a: tests/ace_and_figures.rs

tests/ace_and_figures.rs:
