/root/repo/target/debug/deps/proptests-a2999b9716100cdf.d: crates/isa/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a2999b9716100cdf.rmeta: crates/isa/tests/proptests.rs Cargo.toml

crates/isa/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
