/root/repo/target/debug/deps/ace_and_figures-7d6785913d6524f2.d: tests/ace_and_figures.rs Cargo.toml

/root/repo/target/debug/deps/libace_and_figures-7d6785913d6524f2.rmeta: tests/ace_and_figures.rs Cargo.toml

tests/ace_and_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
