/root/repo/target/debug/deps/repro-e7a183952b73a3e7.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-e7a183952b73a3e7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
