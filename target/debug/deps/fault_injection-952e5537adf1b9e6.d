/root/repo/target/debug/deps/fault_injection-952e5537adf1b9e6.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-952e5537adf1b9e6: tests/fault_injection.rs

tests/fault_injection.rs:
