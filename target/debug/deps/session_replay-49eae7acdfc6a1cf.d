/root/repo/target/debug/deps/session_replay-49eae7acdfc6a1cf.d: tests/session_replay.rs Cargo.toml

/root/repo/target/debug/deps/libsession_replay-49eae7acdfc6a1cf.rmeta: tests/session_replay.rs Cargo.toml

tests/session_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
