/root/repo/target/debug/deps/gpu_archs-a79b05142dd6ea9d.d: crates/archs/src/lib.rs

/root/repo/target/debug/deps/gpu_archs-a79b05142dd6ea9d: crates/archs/src/lib.rs

crates/archs/src/lib.rs:
