/root/repo/target/debug/deps/semantics-685b378400744725.d: crates/sim/tests/semantics.rs

/root/repo/target/debug/deps/semantics-685b378400744725: crates/sim/tests/semantics.rs

crates/sim/tests/semantics.rs:
