/root/repo/target/debug/deps/workload_validation-5eaeec4de06653ed.d: tests/workload_validation.rs

/root/repo/target/debug/deps/workload_validation-5eaeec4de06653ed: tests/workload_validation.rs

tests/workload_validation.rs:
