/root/repo/target/debug/deps/simt_sim-119ca3786deac831.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/fault.rs crates/sim/src/gpu.rs crates/sim/src/launch.rs crates/sim/src/mem.rs crates/sim/src/observer.rs crates/sim/src/regfile.rs crates/sim/src/session.rs crates/sim/src/sm.rs crates/sim/src/warp.rs

/root/repo/target/debug/deps/simt_sim-119ca3786deac831: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/fault.rs crates/sim/src/gpu.rs crates/sim/src/launch.rs crates/sim/src/mem.rs crates/sim/src/observer.rs crates/sim/src/regfile.rs crates/sim/src/session.rs crates/sim/src/sm.rs crates/sim/src/warp.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/error.rs:
crates/sim/src/fault.rs:
crates/sim/src/gpu.rs:
crates/sim/src/launch.rs:
crates/sim/src/mem.rs:
crates/sim/src/observer.rs:
crates/sim/src/regfile.rs:
crates/sim/src/session.rs:
crates/sim/src/sm.rs:
crates/sim/src/warp.rs:
