/root/repo/target/debug/deps/grel_core-3ba44d3e743703cc.d: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

/root/repo/target/debug/deps/grel_core-3ba44d3e743703cc: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/ace.rs:
crates/core/src/breakdown.rs:
crates/core/src/campaign.rs:
crates/core/src/epf.rs:
crates/core/src/perf.rs:
crates/core/src/protection.rs:
crates/core/src/stats.rs:
crates/core/src/study.rs:
