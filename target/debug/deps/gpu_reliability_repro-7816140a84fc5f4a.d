/root/repo/target/debug/deps/gpu_reliability_repro-7816140a84fc5f4a.d: src/lib.rs

/root/repo/target/debug/deps/gpu_reliability_repro-7816140a84fc5f4a: src/lib.rs

src/lib.rs:
