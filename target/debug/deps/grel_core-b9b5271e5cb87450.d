/root/repo/target/debug/deps/grel_core-b9b5271e5cb87450.d: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs Cargo.toml

/root/repo/target/debug/deps/libgrel_core-b9b5271e5cb87450.rmeta: crates/core/src/lib.rs crates/core/src/ace.rs crates/core/src/breakdown.rs crates/core/src/campaign.rs crates/core/src/epf.rs crates/core/src/perf.rs crates/core/src/protection.rs crates/core/src/stats.rs crates/core/src/study.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ace.rs:
crates/core/src/breakdown.rs:
crates/core/src/campaign.rs:
crates/core/src/epf.rs:
crates/core/src/perf.rs:
crates/core/src/protection.rs:
crates/core/src/stats.rs:
crates/core/src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
