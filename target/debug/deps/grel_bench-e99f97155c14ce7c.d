/root/repo/target/debug/deps/grel_bench-e99f97155c14ce7c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/grel_bench-e99f97155c14ce7c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
