/root/repo/target/debug/deps/gpu_reliability_repro-97d4c0b77f3a5703.d: src/lib.rs

/root/repo/target/debug/deps/gpu_reliability_repro-97d4c0b77f3a5703: src/lib.rs

src/lib.rs:
