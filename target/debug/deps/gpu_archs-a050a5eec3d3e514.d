/root/repo/target/debug/deps/gpu_archs-a050a5eec3d3e514.d: crates/archs/src/lib.rs

/root/repo/target/debug/deps/libgpu_archs-a050a5eec3d3e514.rlib: crates/archs/src/lib.rs

/root/repo/target/debug/deps/libgpu_archs-a050a5eec3d3e514.rmeta: crates/archs/src/lib.rs

crates/archs/src/lib.rs:
