/root/repo/target/debug/deps/gpu_archs-28b9427473dbba76.d: crates/archs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_archs-28b9427473dbba76.rmeta: crates/archs/src/lib.rs Cargo.toml

crates/archs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
