/root/repo/target/debug/deps/cli-a38a080a461f3353.d: crates/bench/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-a38a080a461f3353.rmeta: crates/bench/tests/cli.rs Cargo.toml

crates/bench/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_repro=placeholder:repro
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
