/root/repo/target/debug/deps/simulator-0b6e1c9183f57c3c.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-0b6e1c9183f57c3c.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
