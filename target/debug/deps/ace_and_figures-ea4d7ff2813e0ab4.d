/root/repo/target/debug/deps/ace_and_figures-ea4d7ff2813e0ab4.d: tests/ace_and_figures.rs

/root/repo/target/debug/deps/ace_and_figures-ea4d7ff2813e0ab4: tests/ace_and_figures.rs

tests/ace_and_figures.rs:
