/root/repo/target/debug/deps/semantics-58e61971de070796.d: crates/sim/tests/semantics.rs

/root/repo/target/debug/deps/semantics-58e61971de070796: crates/sim/tests/semantics.rs

crates/sim/tests/semantics.rs:
