/root/repo/target/debug/deps/simt_isa-5a174a2e381671b8.d: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libsimt_isa-5a174a2e381671b8.rlib: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libsimt_isa-5a174a2e381671b8.rmeta: crates/isa/src/lib.rs crates/isa/src/cfg.rs crates/isa/src/error.rs crates/isa/src/instr.rs crates/isa/src/kernel.rs crates/isa/src/lower.rs crates/isa/src/op.rs crates/isa/src/parse.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/cfg.rs:
crates/isa/src/error.rs:
crates/isa/src/instr.rs:
crates/isa/src/kernel.rs:
crates/isa/src/lower.rs:
crates/isa/src/op.rs:
crates/isa/src/parse.rs:
crates/isa/src/reg.rs:
