//! The parallel runner's determinism contract, enforced end to end:
//! campaign and study results must be **bit-identical** at any job
//! count, with telemetry hooks off or live, and — given enough cores —
//! the parallelism must actually buy wall-clock time.

use gpu_archs::{all_devices, geforce_gtx_480, quadro_fx_5600};
use gpu_workloads::{Histogram, Reduction, VectorAdd, Workload};
use grel_core::campaign::{
    run_campaign, run_campaign_parallel, run_campaign_parallel_hooked, CampaignConfig,
    CampaignResult,
};
use grel_core::study::{run_study, run_study_parallel, run_study_parallel_hooked, StudyConfig};
use grel_telemetry::{MetricsRegistry, MetricsSnapshot, NoopHook, RegistryHook};
use simt_sim::{ArchConfig, FaultModelKind, Structure};

fn quick_cfg(injections: u32) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick(11);
    cfg.injections = injections;
    cfg.threads = 1;
    cfg
}

/// Field-by-field equality, floats compared bit-for-bit.
fn assert_identical(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.structure, b.structure);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.golden_cycles, b.golden_cycles);
    assert_eq!(a.population, b.population);
    assert_eq!(a.margin_99.to_bits(), b.margin_99.to_bits());
    assert_eq!(a.avf().to_bits(), b.avf().to_bits());
}

fn outcome_counter_sum(snap: &MetricsSnapshot) -> u64 {
    snap.counters()
        .filter(|(name, _)| name.starts_with("campaign_injections_total{outcome="))
        .map(|(_, v)| v)
        .sum()
}

#[test]
fn campaign_is_bit_identical_at_jobs_1_2_8() {
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(1024, 11);
    let cfg = quick_cfg(24);

    let sequential = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
    for jobs in [1usize, 2, 8] {
        let parallel =
            run_campaign_parallel(&arch, &w, Structure::VectorRegisterFile, cfg, jobs).unwrap();
        assert_identical(&sequential, &parallel);
    }
}

#[test]
fn campaign_with_live_hooks_is_bit_identical_at_jobs_1_2_8() {
    let arch = quadro_fx_5600();
    let w = Histogram::new(1024, 64, 7);
    let cfg = quick_cfg(24);

    let plain =
        run_campaign_parallel_hooked(&arch, &w, Structure::LocalMemory, cfg, 1, &NoopHook).unwrap();
    for jobs in [1usize, 2, 8] {
        let registry = MetricsRegistry::new();
        let hook = RegistryHook::new(&registry);
        let hooked =
            run_campaign_parallel_hooked(&arch, &w, Structure::LocalMemory, cfg, jobs, &hook)
                .unwrap();
        assert_identical(&plain, &hooked);

        // The live hooks shard per worker; the harvest still accounts
        // for every injection: oracle-pruned sites are tallied serially
        // before the fan-out, and the workers replay exactly the
        // unpruned remainder (the worker gauge reflects that pool).
        let snap = registry.snapshot();
        assert_eq!(outcome_counter_sum(&snap), 24);
        let pruned: u64 = snap
            .counters()
            .filter(|(name, _)| name.starts_with("campaign_pruned_total"))
            .map(|(_, v)| v)
            .sum();
        let replayed = 24 - pruned;
        let workers = snap.gauge("campaign_workers").unwrap() as usize;
        assert_eq!(workers, jobs.min((replayed as usize).max(1)));
        let per_worker: u64 = snap
            .counters()
            .filter(|(name, _)| name.starts_with("campaign_worker_injections_total{worker="))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_worker, replayed, "workers replay the unpruned sites");
    }
}

/// The determinism contract extends to every fault model: stuck-at and
/// control campaigns must produce bit-identical results at any job
/// count. The barrier-synchronized reduction on the small test GPU
/// keeps every warp slot live, so control faults actually land and the
/// tallies being compared include Hang and DUE outcomes, not just
/// Masked.
#[test]
fn stuck_at_and_control_campaigns_are_bit_identical_at_jobs_1_2_8() {
    let arch = ArchConfig::small_test_gpu();
    let w = Reduction::new(256, 32, 5);
    for model in [
        FaultModelKind::Stuck0,
        FaultModelKind::Stuck1,
        FaultModelKind::Control,
    ] {
        let mut cfg = quick_cfg(24);
        cfg.fault_model = model;
        let sequential = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
        assert_eq!(sequential.tally.total(), 24, "{model:?}");
        for jobs in [1usize, 2, 8] {
            let parallel =
                run_campaign_parallel(&arch, &w, Structure::VectorRegisterFile, cfg, jobs).unwrap();
            assert_identical(&sequential, &parallel);
        }
    }
}

#[test]
fn study_is_bit_identical_at_jobs_1_2_8() {
    let archs = all_devices();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VectorAdd::new(512, 13)),
        Box::new(Histogram::new(512, 32, 13)),
    ];
    let cfg = StudyConfig {
        campaign: quick_cfg(8),
        workload_seed: 13,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };

    let sequential = run_study(&archs, &workloads, &cfg).unwrap();
    for jobs in [1usize, 2, 8] {
        let parallel = run_study_parallel(&archs, &workloads, &cfg, jobs).unwrap();
        assert_eq!(sequential.points.len(), parallel.points.len());
        for (a, b) in sequential.points.iter().zip(&parallel.points) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.device, b.device);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.rf.tally, b.rf.tally);
            assert_eq!(a.lds.tally, b.lds.tally);
            assert_eq!(a.rf.avf_fi.to_bits(), b.rf.avf_fi.to_bits());
            assert_eq!(a.rf.avf_ace.to_bits(), b.rf.avf_ace.to_bits());
            assert_eq!(a.lds.avf_fi.to_bits(), b.lds.avf_fi.to_bits());
            assert_eq!(a.eit.to_bits(), b.eit.to_bits());
            assert_eq!(a.epf.to_bits(), b.epf.to_bits());
        }
    }
}

#[test]
fn study_with_live_hooks_is_bit_identical() {
    let archs = vec![geforce_gtx_480()];
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VectorAdd::new(512, 17)),
        Box::new(Histogram::new(512, 32, 17)),
    ];
    let cfg = StudyConfig {
        campaign: quick_cfg(8),
        workload_seed: 17,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };

    let plain = run_study(&archs, &workloads, &cfg).unwrap();
    let registry = MetricsRegistry::new();
    let hook = RegistryHook::new(&registry);
    let hooked = run_study_parallel_hooked(&archs, &workloads, &cfg, 2, &hook).unwrap();
    for (a, b) in plain.points.iter().zip(&hooked.points) {
        assert_eq!(a.rf.tally, b.rf.tally);
        assert_eq!(a.epf.to_bits(), b.epf.to_bits());
    }
    // VectorAdd: RF only; Histogram: RF + LDS -> 3 campaigns x 8.
    assert_eq!(outcome_counter_sum(&registry.snapshot()), 24);
}

/// The acceptance bar from the issue: a 2,000-injection campaign at
/// `--jobs 4` must be at least 2x faster than at `--jobs 1`, with
/// byte-identical results. The timing half needs real cores, so the
/// whole test is skipped on machines with fewer than four.
#[test]
fn four_jobs_halve_the_2000_injection_wall_clock() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
        return;
    }
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(1024, 2017);
    let cfg = quick_cfg(2000);

    let t1 = std::time::Instant::now();
    let sequential =
        run_campaign_parallel(&arch, &w, Structure::VectorRegisterFile, cfg, 1).unwrap();
    let serial_secs = t1.elapsed().as_secs_f64();

    let t4 = std::time::Instant::now();
    let parallel = run_campaign_parallel(&arch, &w, Structure::VectorRegisterFile, cfg, 4).unwrap();
    let parallel_secs = t4.elapsed().as_secs_f64();

    assert_identical(&sequential, &parallel);
    let speedup = serial_secs / parallel_secs.max(1e-9);
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup at 4 jobs, got {speedup:.2}x \
         ({serial_secs:.2}s -> {parallel_secs:.2}s)"
    );
}
