//! The adaptive stratified sampler is an orchestration layer over the
//! same deterministic replay core as the fixed-size campaign, so its
//! acceleration knobs must only skip work, never change it. Tallies,
//! estimates, margins and the full round schedule have to be
//! bit-identical at any worker count and across the prune and batch
//! knobs; the same seed has to reproduce the same rounds exactly.

use gpu_archs::{geforce_gtx_480, quadro_fx_5600};
use gpu_workloads::{Reduction, VectorAdd, Workload};
use grel_core::campaign::CampaignConfig;
use grel_core::sampling::{run_adaptive_campaign, AdaptiveCampaign, SamplingPlan};
use simt_sim::Structure;

/// Field-by-field equality, floats compared bit-for-bit, rounds
/// compared quota-by-quota.
fn assert_identical(a: &AdaptiveCampaign, b: &AdaptiveCampaign, label: &str) {
    assert_eq!(a.structure, b.structure, "{label}");
    assert_eq!(a.tally, b.tally, "{label}");
    assert_eq!(a.sampled, b.sampled, "{label}");
    assert_eq!(a.avf.to_bits(), b.avf.to_bits(), "{label}");
    assert_eq!(a.avf_sdc.to_bits(), b.avf_sdc.to_bits(), "{label}");
    assert_eq!(a.margin.to_bits(), b.margin.to_bits(), "{label}");
    assert_eq!(a.converged, b.converged, "{label}");
    assert_eq!(a.population, b.population, "{label}");
    assert_eq!(a.golden_cycles, b.golden_cycles, "{label}");
    // `RoundPlan::replayed` counts work the oracle did not skip, so it
    // legitimately drops when pruning is on; everything else about the
    // schedule must match exactly.
    let rounds = |r: &AdaptiveCampaign| {
        r.rounds
            .iter()
            .map(|p| (p.round, p.quotas.clone(), p.sampled, p.margin_bits))
            .collect::<Vec<_>>()
    };
    assert_eq!(rounds(a), rounds(b), "{label}");
    let snaps = |r: &AdaptiveCampaign| {
        r.strata
            .iter()
            .map(|s| (s.label.clone(), s.population, s.seen, s.planned, s.tally))
            .collect::<Vec<_>>()
    };
    assert_eq!(snaps(a), snaps(b), "{label}");
}

fn cfg(threads: usize, prune: bool, batch: bool) -> CampaignConfig {
    let mut c = CampaignConfig::quick(11);
    c.threads = threads;
    c.prune = prune;
    c.batch = batch;
    c
}

/// One adaptive campaign eight ways — jobs 1/2/8 crossed with the
/// prune and batch knobs — every run bit-identical (except `replayed`,
/// which counts work skipped by the oracle and so legitimately drops
/// when pruning is on) to the jobs-1 unpruned scalar run.
fn check_adaptive_equivalence(workload: &dyn Workload, structure: Structure) {
    let arch = quadro_fx_5600();
    let plan = SamplingPlan::with_target(0.05);
    let full =
        run_adaptive_campaign(&arch, workload, structure, cfg(1, false, false), plan).unwrap();
    assert!(full.converged, "loose target must be reachable");
    assert!(!full.rounds.is_empty(), "the pilot always runs");
    for jobs in [1usize, 2, 8] {
        for (prune, batch, label) in [
            (false, false, "scalar full replay"),
            (false, true, "batched"),
            (true, false, "pruned"),
            (true, true, "pruned+batched"),
        ] {
            let run =
                run_adaptive_campaign(&arch, workload, structure, cfg(jobs, prune, batch), plan)
                    .unwrap();
            assert_identical(
                &full,
                &run,
                &format!("{} {structure} {label} jobs={jobs}", workload.name()),
            );
            if prune {
                assert!(
                    run.replayed <= full.replayed,
                    "pruning can only skip replays"
                );
            } else {
                assert_eq!(run.replayed, full.replayed, "no pruning, same replays");
            }
        }
    }
}

#[test]
fn adaptive_rf_campaign_is_invariant_across_jobs_prune_and_batch() {
    check_adaptive_equivalence(&VectorAdd::new(256, 11), Structure::VectorRegisterFile);
}

#[test]
fn adaptive_shared_memory_campaign_is_invariant_across_jobs_prune_and_batch() {
    check_adaptive_equivalence(&Reduction::new(256, 32, 11), Structure::LocalMemory);
}

/// The allocation sequence is a pure function of (campaign definition,
/// pilot tallies): re-running with the same seed reproduces the exact
/// round schedule, and a different seed is allowed to differ.
#[test]
fn same_seed_reproduces_the_same_rounds() {
    let arch = geforce_gtx_480();
    let workload = VectorAdd::new(256, 11);
    let plan = SamplingPlan::with_target(0.05);
    let mut c = CampaignConfig::quick(23);
    c.threads = 2;
    let a =
        run_adaptive_campaign(&arch, &workload, Structure::VectorRegisterFile, c, plan).unwrap();
    let b =
        run_adaptive_campaign(&arch, &workload, Structure::VectorRegisterFile, c, plan).unwrap();
    assert_identical(&a, &b, "same seed, same campaign");
    assert_eq!(a.replayed, b.replayed, "same seed, same replays");
    assert_eq!(a.rounds, b.rounds, "same seed, same rounds verbatim");
}
