//! ACE-vs-FI relationships and figure assembly, end to end at smoke
//! scale.

use gpu_reliability_repro::archs::{all_devices, quadro_fx_5600, quadro_fx_5800};
use gpu_reliability_repro::reliability::ace::{AceAnalyzer, AceMode};
use gpu_reliability_repro::reliability::campaign::CampaignConfig;
use gpu_reliability_repro::reliability::study::{run_study, StudyConfig};
use gpu_reliability_repro::sim::{Gpu, Structure};
use gpu_reliability_repro::workloads::{MatrixMul, Transpose, VectorAdd, Workload};

fn smoke_cfg(injections: u32) -> StudyConfig {
    StudyConfig {
        campaign: CampaignConfig {
            injections,
            threads: 4,
            ..CampaignConfig::quick(2017)
        },
        workload_seed: 2017,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: AceMode::LiveUntilOverwrite,
        sampling: Default::default(),
    }
}

#[test]
fn conservative_ace_dominates_refined_ace() {
    let w = MatrixMul::new(32, 7);
    for arch in all_devices() {
        let mut g1 = Gpu::new(arch.clone());
        let mut cons = AceAnalyzer::new(&arch);
        w.run(&mut g1, &mut cons).unwrap();
        let mut g2 = Gpu::new(arch.clone());
        let mut refi = AceAnalyzer::with_mode(&arch, AceMode::WriteToLastRead);
        w.run(&mut g2, &mut refi).unwrap();
        for s in [Structure::VectorRegisterFile, Structure::LocalMemory] {
            let c = cons.report(s).avf_ace;
            let r = refi.report(s).avf_ace;
            assert!(
                c >= r - 1e-12,
                "{}: conservative {c} < refined {r} for {s}",
                arch.name
            );
        }
    }
}

#[test]
fn ace_never_exceeds_occupancy() {
    // Only allocated, written words can be ACE, so the conservative bound
    // is capped by the time-weighted occupancy.
    let w = Transpose::new(32, 7);
    for arch in all_devices() {
        let mut gpu = Gpu::new(arch.clone());
        let mut ace = AceAnalyzer::new(&arch);
        w.run(&mut gpu, &mut ace).unwrap();
        for s in [Structure::VectorRegisterFile, Structure::LocalMemory] {
            let rep = ace.report(s);
            assert!(
                rep.avf_ace <= rep.occupancy + 1e-9,
                "{}: ACE {} > occupancy {} for {s}",
                arch.name,
                rep.avf_ace,
                rep.occupancy
            );
        }
    }
}

#[test]
fn scalar_file_sees_activity_on_si_only() {
    let w = MatrixMul::new(32, 7);
    for arch in all_devices() {
        let mut gpu = Gpu::new(arch.clone());
        let mut ace = AceAnalyzer::new(&arch);
        w.run(&mut gpu, &mut ace).unwrap();
        let srf = ace.report(Structure::ScalarRegisterFile);
        if arch.sregfile_bytes_per_sm > 0 {
            assert!(srf.avf_ace > 0.0, "{}: scalar file unused", arch.name);
        } else {
            assert_eq!(srf.total_bits, 0, "{}", arch.name);
        }
    }
}

#[test]
fn study_reproduces_figure_shapes_at_smoke_scale() {
    let archs = vec![quadro_fx_5600(), quadro_fx_5800()];
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VectorAdd::new(2048, 2017)),
        Box::new(Transpose::new(64, 2017)),
        Box::new(MatrixMul::new(32, 2017)),
    ];
    let study = run_study(&archs, &workloads, &smoke_cfg(60)).unwrap();
    assert_eq!(study.points.len(), 6);

    // Fig. 1: per-device averages exist and AVFs are probabilities.
    let fig1 = study.fig1_rows();
    assert_eq!(fig1.len(), 6 + 2);
    for r in &fig1 {
        assert!((0.0..=1.0).contains(&r.avf_fi), "{r:?}");
        assert!((0.0..=1.0).contains(&r.avf_ace), "{r:?}");
        assert!((0.0..=1.0).contains(&r.occupancy), "{r:?}");
    }

    // Fig. 2 contains only the LDS workloads.
    let fig2 = study.fig2_rows();
    assert!(fig2.iter().all(|r| r.workload != "vectoradd"));

    // Fig. 3: every EPF is positive; finite whenever FIT > 0.
    for r in study.fig3_rows() {
        assert!(r.epf > 0.0, "{r:?}");
        if r.fit_gpu > 0.0 {
            assert!(r.epf.is_finite());
        }
    }

    // Findings: the paper's key claim F3 must hold in sign at this scale:
    // ACE overestimates the register file more than the local memory.
    let f = study.findings();
    assert!(
        f.rf_ace_gap > f.lds_ace_gap - 1e-9,
        "RF gap {} should exceed LDS gap {}",
        f.rf_ace_gap,
        f.lds_ace_gap
    );
    // And F2: occupancy correlation is positive.
    assert!(
        f.rf_avf_occupancy_corr > 0.0,
        "r = {}",
        f.rf_avf_occupancy_corr
    );
}
