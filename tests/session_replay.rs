//! Execution-session equivalence and checkpointed-replay correctness,
//! end to end: the incremental session driver must be indistinguishable
//! from a single-shot run, and replaying from checkpoints must never
//! change a campaign outcome.

use gpu_reliability_repro::archs::{all_devices, geforce_gtx_480, hd_radeon_7970, quadro_fx_5600};
use gpu_reliability_repro::reliability::campaign::{
    golden_run, run_injections, run_injections_checkpointed, sample_sites, CampaignConfig,
    CheckpointLadder,
};
use gpu_reliability_repro::sim::{ArchConfig, Gpu, NoopObserver, Session, Structure};
use gpu_reliability_repro::workloads::{
    Backprop, DwtHaar1D, Gaussian, Histogram, Kmeans, MatrixMul, Reduction, Scan, Transpose,
    VectorAdd, Workload,
};
use proptest::prelude::*;

/// Every benchmark at an integration-test-friendly size.
fn all_workloads(seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(VectorAdd::new(256, seed)),
        Box::new(Transpose::new(32, seed)),
        Box::new(MatrixMul::new(16, seed)),
        Box::new(Histogram::new(512, 64, seed)),
        Box::new(Reduction::new(256, 64, seed)),
        Box::new(Scan::new(256, 64, seed)),
        Box::new(DwtHaar1D::new(64, seed)),
        Box::new(Gaussian::new(8, seed)),
        Box::new(Kmeans::new(128, 4, 2, seed)),
        Box::new(Backprop::new(32, seed)),
    ]
}

/// Drives a plan in `stride`-cycle slices instead of one shot.
fn run_incremental(arch: &ArchConfig, w: &dyn Workload, stride: u64) -> (Vec<u32>, u64) {
    let mut gpu = Gpu::new(arch.clone());
    let mut session = Session::new(&mut gpu, w.plan());
    let mut mark = stride;
    while !session.finished() {
        session
            .run_until_cycle(mark, &mut NoopObserver)
            .expect("fault-free slice");
        mark += stride;
    }
    let out = session.outputs().expect("finished").to_vec();
    (out, gpu.app_cycle())
}

#[test]
fn incremental_session_matches_single_shot_on_every_device() {
    for arch in all_devices() {
        for w in all_workloads(11) {
            let mut gpu = Gpu::new(arch.clone());
            let one_shot = w.run(&mut gpu, &mut NoopObserver).unwrap();
            let cycles = gpu.app_cycle();
            // An awkward prime stride maximises mid-kernel boundaries.
            let (sliced, sliced_cycles) = run_incremental(&arch, w.as_ref(), 37);
            assert_eq!(
                one_shot,
                sliced,
                "{} on {}: outputs differ",
                w.name(),
                arch.name
            );
            assert_eq!(
                cycles,
                sliced_cycles,
                "{} on {}: cycles differ",
                w.name(),
                arch.name
            );
            assert_eq!(
                one_shot,
                w.reference(),
                "{} on {}: wrong result",
                w.name(),
                arch.name
            );
        }
    }
}

fn cfg(n: u32) -> CampaignConfig {
    CampaignConfig {
        injections: n,
        threads: 2,
        ..CampaignConfig::quick(77)
    }
}

/// From-zero and checkpointed replay of the identical site list must
/// produce the identical outcome sequence.
fn assert_replay_equivalence(arch: &ArchConfig, w: &dyn Workload, structure: Structure) {
    let c = cfg(10);
    let golden = golden_run(arch, w).unwrap();
    let sites = sample_sites(arch, structure, golden.cycles, c.injections, c.seed);
    let ladder = CheckpointLadder::build(arch, w, &golden, &c).unwrap();
    assert!(
        !ladder.is_empty(),
        "auto ladder must have rungs for {}",
        w.name()
    );
    let from_zero = run_injections(arch, w, &golden, &sites, c).unwrap();
    let from_ckpt = run_injections_checkpointed(arch, w, &golden, &ladder, &sites, c).unwrap();
    assert_eq!(
        from_zero,
        from_ckpt,
        "{structure} on {} / {}: checkpointed outcomes diverged",
        arch.name,
        w.name()
    );
}

#[test]
fn checkpointed_rf_campaign_matches_from_zero_on_two_devices() {
    for arch in [quadro_fx_5600(), geforce_gtx_480()] {
        assert_replay_equivalence(
            &arch,
            &Histogram::new(512, 64, 5),
            Structure::VectorRegisterFile,
        );
        assert_replay_equivalence(
            &arch,
            &Kmeans::new(128, 4, 2, 5),
            Structure::VectorRegisterFile,
        );
    }
}

#[test]
fn checkpointed_lds_campaign_matches_from_zero_on_two_devices() {
    for arch in [quadro_fx_5600(), hd_radeon_7970()] {
        assert_replay_equivalence(&arch, &Histogram::new(512, 64, 5), Structure::LocalMemory);
        assert_replay_equivalence(&arch, &Scan::new(256, 64, 5), Structure::LocalMemory);
    }
}

#[test]
fn checkpointed_srf_campaign_matches_from_zero_on_si() {
    // Only Southern Islands has a scalar register file.
    assert_replay_equivalence(
        &hd_radeon_7970(),
        &MatrixMul::new(16, 5),
        Structure::ScalarRegisterFile,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot → restore round-trips at an arbitrary mid-execution
    /// cycle: finishing from the restored state reproduces the original
    /// outputs and cycle count exactly.
    #[test]
    fn snapshot_restore_roundtrips_at_any_cycle(seed in any::<u64>(), pct in 1u64..100) {
        let arch = quadro_fx_5600();
        let w = Transpose::new(32, seed % 16);
        let golden = golden_run(&arch, &w).unwrap();
        let cut = 1 + (golden.cycles - 2) * pct / 100;

        let mut gpu = Gpu::new(arch.clone());
        let mut session = Session::new(&mut gpu, w.plan());
        session.run_until_cycle(cut, &mut NoopObserver).unwrap();
        let ckpt = session.snapshot();
        let direct = session.run_to_completion(&mut NoopObserver).unwrap();
        let direct_cycles = gpu.app_cycle();

        let mut gpu2 = Gpu::new(arch.clone());
        let mut resumed = Session::resume(&mut gpu2, &ckpt);
        let replayed = resumed.run_to_completion(&mut NoopObserver).unwrap();
        prop_assert_eq!(direct, replayed);
        prop_assert_eq!(direct_cycles, gpu2.app_cycle());
        prop_assert_eq!(golden.cycles, direct_cycles);
    }
}
