//! Property-based tests over the public API: determinism, classification
//! sanity and site-space containment under randomized campaigns.

use gpu_reliability_repro::archs::{geforce_gtx_480, quadro_fx_5600};
use gpu_reliability_repro::reliability::campaign::{
    golden_run, run_injections, sample_sites, CampaignConfig, Outcome,
};
use gpu_reliability_repro::reliability::stats::{Proportion, Z_99};
use gpu_reliability_repro::sim::{Gpu, NoopObserver, Structure};
use gpu_reliability_repro::workloads::{VectorAdd, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seed's sites stay inside the structure and the sampled window.
    #[test]
    fn sites_always_in_range(seed in any::<u64>(), cycles in 1u64..1_000_000) {
        let arch = geforce_gtx_480();
        for s in sample_sites(&arch, Structure::VectorRegisterFile, cycles, 64, seed) {
            prop_assert!(s.sm < arch.num_sms);
            prop_assert!(s.word < arch.rf_words_per_sm());
            prop_assert!(s.bit < 32);
            prop_assert!(s.cycle < cycles);
        }
    }

    /// Site sampling is a seeded partial Fisher–Yates shuffle over the
    /// flat site index space: the same seed always reproduces the same
    /// list, and the list never contains the same `(sm, word, bit,
    /// cycle)` site twice — each drawn fault is a distinct member of the
    /// population, as the Leveugle margin assumes.
    #[test]
    fn sampling_is_deterministic_and_without_replacement(
        seed in any::<u64>(),
        cycles in 1u64..100_000,
    ) {
        let arch = geforce_gtx_480();
        let a = sample_sites(&arch, Structure::VectorRegisterFile, cycles, 128, seed);
        let b = sample_sites(&arch, Structure::VectorRegisterFile, cycles, 128, seed);
        prop_assert_eq!(&a, &b);
        let mut seen = std::collections::HashSet::new();
        for s in &a {
            prop_assert!(seen.insert(*s), "duplicate site {s:?}");
        }
    }

    /// Golden runs are a pure function of (arch, workload): any two
    /// evaluations agree in output and cycle count.
    #[test]
    fn golden_runs_are_pure(seed in any::<u64>()) {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, seed);
        let a = golden_run(&arch, &w).unwrap();
        let b = golden_run(&arch, &w).unwrap();
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.cycles, b.cycles);
    }

    /// Replaying the same site twice yields the same outcome, and a
    /// double flip at the same (site, cycle) pair cannot exist — but two
    /// *distinct* cycles for the same bit can differ, so we only check
    /// replay stability.
    #[test]
    fn classification_is_replay_stable(seed in any::<u64>()) {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(256, 3);
        let golden = golden_run(&arch, &w).unwrap();
        let sites = sample_sites(&arch, Structure::VectorRegisterFile, golden.cycles, 4, seed);
        let cfg = CampaignConfig { injections: 4, threads: 1, ..CampaignConfig::quick(seed) };
        let o1 = run_injections(&arch, &w, &golden, &sites, cfg).unwrap();
        let o2 = run_injections(&arch, &w, &golden, &sites, cfg).unwrap();
        prop_assert_eq!(o1, o2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A flipped-then-flipped-back world is unreachable: any injected
    /// run either matches golden exactly (masked) or differs/fails; the
    /// classifier never produces an impossible mixed state. Also: SDC
    /// outputs have the same length as golden.
    #[test]
    fn outcomes_partition_cleanly(seed in any::<u64>()) {
        let arch = quadro_fx_5600();
        let w = VectorAdd::new(512, 5);
        let golden = golden_run(&arch, &w).unwrap();
        let sites = sample_sites(&arch, Structure::VectorRegisterFile, golden.cycles, 6, seed);
        for site in sites {
            let mut gpu = Gpu::new(arch.clone());
            gpu.set_watchdog(golden.cycles * 10 + 10_000);
            gpu.arm_fault(site);
            match w.run(&mut gpu, &mut NoopObserver) {
                Ok(out) => {
                    prop_assert_eq!(out.len(), golden.outputs.len());
                    let _masked = out == golden.outputs;
                }
                Err(e) => {
                    prop_assert!(e.as_due().is_some(), "non-DUE failure: {e}");
                }
            }
        }
        // Silence the unused-variable lint path for Outcome.
        let _ = Outcome::Masked;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Proportion::interval(z)` is monotone in the confidence level —
    /// a larger z can only widen the interval — both bounds stay inside
    /// [0, 1], and `interval(Z_99)` reproduces `interval_99()` exactly
    /// (same finite-population margin, same bits).
    #[test]
    fn proportion_interval_monotone_and_clamped(
        trials in 1u64..400,
        hits_sel in any::<u64>(),
        za in 1u64..50,
        zb in 1u64..50,
    ) {
        let hits = hits_sel % (trials + 1);
        let population = trials * 1000 + 7;
        let p = Proportion::new(hits, trials, population);
        let (z_lo, z_hi) = (za.min(zb) as f64 / 10.0, za.max(zb) as f64 / 10.0);
        let (lo1, hi1) = p.interval(z_lo);
        let (lo2, hi2) = p.interval(z_hi);
        prop_assert!(lo2 <= lo1 && hi1 <= hi2, "larger z must widen: {lo1}..{hi1} vs {lo2}..{hi2}");
        for (lo, hi) in [(lo1, hi1), (lo2, hi2)] {
            prop_assert!(lo <= hi);
            prop_assert!((0.0..=1.0).contains(&lo), "lower bound {lo} escaped [0,1]");
            prop_assert!((0.0..=1.0).contains(&hi), "upper bound {hi} escaped [0,1]");
        }
        prop_assert_eq!(p.interval(Z_99), p.interval_99());
    }

    /// An exhaustive campaign (`trials == population`) has measured every
    /// site: the interval degenerates to the point estimate at any z.
    #[test]
    fn exhaustive_proportion_interval_is_a_point(
        trials in 1u64..1000,
        hits_sel in any::<u64>(),
        zt in 1u64..50,
    ) {
        let hits = hits_sel % (trials + 1);
        let p = Proportion::new(hits, trials, trials);
        prop_assert_eq!(p.margin(zt as f64 / 10.0), 0.0);
        prop_assert_eq!(p.interval(zt as f64 / 10.0), (p.value, p.value));
    }

    /// `Proportion::wilson(z)` always yields a well-formed interval:
    /// inside [0, 1], bracketing the point estimate, and nested in z —
    /// a larger confidence level can only widen it.
    #[test]
    fn wilson_interval_contained_bracketing_and_nested_in_z(
        trials in 1u64..400,
        hits_sel in any::<u64>(),
        za in 1u64..50,
        zb in 1u64..50,
    ) {
        let hits = hits_sel % (trials + 1);
        let population = trials * 1000 + 7;
        let p = Proportion::new(hits, trials, population);
        let (z_lo, z_hi) = (za.min(zb) as f64 / 10.0, za.max(zb) as f64 / 10.0);
        let (lo1, hi1) = p.wilson(z_lo);
        let (lo2, hi2) = p.wilson(z_hi);
        for (lo, hi) in [(lo1, hi1), (lo2, hi2)] {
            prop_assert!((0.0..=1.0).contains(&lo), "lower bound {lo} escaped [0,1]");
            prop_assert!((0.0..=1.0).contains(&hi), "upper bound {hi} escaped [0,1]");
            prop_assert!(lo <= p.value && p.value <= hi, "{lo}..{hi} must bracket {}", p.value);
        }
        prop_assert!(lo2 <= lo1 && hi1 <= hi2, "larger z must widen: {lo1}..{hi1} vs {lo2}..{hi2}");
    }

    /// As trials grow at a fixed proportion, the Wilson interval
    /// converges to the symmetric normal (Wald) interval — the score
    /// correction terms vanish at rate 1/n, so at n = 10,000 the two
    /// agree to well under a margin's worth of slack.
    #[test]
    fn wilson_converges_to_the_normal_interval(
        tenths in 0u64..=10,
        zt in 10u64..30,
    ) {
        let z = zt as f64 / 10.0;
        let trials = 10_000u64;
        let hits = trials * tenths / 10;
        // Effectively infinite population: FPC ~ 1.
        let p = Proportion::new(hits, trials, u64::MAX);
        let (wlo, whi) = p.wilson(z);
        // The Wald interval proper, p̂ ± z·sqrt(p̂(1-p̂)/n), clamped —
        // not `interval(z)`, which uses the conservative p = ½ variance.
        let wald = z * (p.value * (1.0 - p.value) / trials as f64).sqrt();
        let (nlo, nhi) = ((p.value - wald).max(0.0), (p.value + wald).min(1.0));
        // The score correction shifts each bound by at most ~z²/n
        // (center pull plus the +z²/4 under the root).
        let slack = (z * z + 1.0) / trials as f64 + 1e-12;
        prop_assert!((wlo - nlo).abs() <= slack, "lower: wilson {wlo} vs normal {nlo}");
        prop_assert!((whi - nhi).abs() <= slack, "upper: wilson {whi} vs normal {nhi}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_site_string` ↔ `FromStr` round-trips every field of every
    /// fault kind — the `sm:struct:word:bit:cycle[:kind]` grammar that
    /// `repro trace --site` speaks must name any site the sampler can
    /// draw, including the permanent and control-unit kinds.
    #[test]
    fn site_strings_round_trip_all_kinds(
        sm in any::<u32>(),
        word in any::<u32>(),
        bit in 0u8..32,
        cycle in any::<u64>(),
        st in 0usize..3,
        kind in 0usize..7,
    ) {
        use gpu_reliability_repro::sim::{ControlTarget, FaultKind, FaultSite};
        let structure = [
            Structure::VectorRegisterFile,
            Structure::LocalMemory,
            Structure::ScalarRegisterFile,
        ][st];
        let kind = [
            FaultKind::TransientFlip,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Control(ControlTarget::SchedulerSlot),
            FaultKind::Control(ControlTarget::ActiveMask),
            FaultKind::Control(ControlTarget::Scoreboard),
            FaultKind::Control(ControlTarget::BarrierCounter),
        ][kind];
        let site = FaultSite::try_new(structure, sm, word, bit, cycle, kind).unwrap();
        let text = site.to_site_string();
        let parsed: FaultSite = text.parse().unwrap();
        prop_assert_eq!(parsed, site, "via {}", text);
    }

    /// Malformed site strings are rejected, never truncated into a
    /// wrong-but-valid site: out-of-range bits, numeric overflow past
    /// the field width, unknown structures or kinds, and wrong arity
    /// all fail to parse.
    #[test]
    fn malformed_site_strings_are_rejected(
        sm in any::<u32>(),
        word in any::<u32>(),
        bit in 32u64..,
        over in (u32::MAX as u64 + 1)..,
    ) {
        use gpu_reliability_repro::sim::FaultSite;
        for bad in [
            format!("{sm}:rf:{word}:{bit}:0"),         // bit out of range
            format!("{over}:rf:{word}:0:0"),           // sm overflows u32
            format!("{sm}:rf:{over}:0:0"),             // word overflows u32
            format!("{sm}:sram:{word}:0:0"),           // unknown structure
            format!("{sm}:rf:{word}:0:0:latchup"),     // unknown kind
            format!("{sm}:rf:{word}:0"),               // too few fields
            format!("{sm}:rf:{word}:0:0:transient:x"), // too many fields
            format!("{sm}:rf:{word}:-1:0"),            // negative field
            String::new(),                             // empty
        ] {
            prop_assert!(bad.parse::<FaultSite>().is_err(), "accepted {bad:?}");
        }
    }
}
