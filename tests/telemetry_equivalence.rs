//! Telemetry must only observe: a campaign run with live hooks has to
//! produce results byte-identical to the [`NoopHook`] path, and the
//! metrics it harvests must account for every injection.

use gpu_archs::{geforce_gtx_480, quadro_fx_5600};
use gpu_workloads::{Histogram, VectorAdd};
use grel_core::campaign::{run_campaign, run_campaign_hooked, CampaignConfig, CampaignResult};
use grel_core::study::{evaluate_point, evaluate_point_hooked, StudyConfig};
use grel_telemetry::{MemorySink, MetricsRegistry, MetricsSnapshot, NoopHook, RegistryHook};
use simt_sim::Structure;

fn quick_cfg(injections: u32) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick(9);
    cfg.injections = injections;
    cfg.threads = 2;
    cfg
}

/// Field-by-field equality, with the float compared bit-for-bit.
fn assert_identical(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.structure, b.structure);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.golden_cycles, b.golden_cycles);
    assert_eq!(a.margin_99.to_bits(), b.margin_99.to_bits());
}

fn outcome_counter_sum(snap: &MetricsSnapshot) -> u64 {
    snap.counters()
        .filter(|(name, _)| name.starts_with("campaign_injections_total{outcome="))
        .map(|(_, v)| v)
        .sum()
}

#[test]
fn hooked_campaign_result_is_byte_identical_to_noop() {
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(1024, 9);
    let cfg = quick_cfg(20);

    let plain = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap();
    let explicit_noop =
        run_campaign_hooked(&arch, &w, Structure::VectorRegisterFile, cfg, &NoopHook).unwrap();
    assert_identical(&plain, &explicit_noop);

    let registry = MetricsRegistry::new();
    let sink = MemorySink::new();
    let hook = RegistryHook::with_sink(&registry, &sink);
    let hooked = run_campaign_hooked(&arch, &w, Structure::VectorRegisterFile, cfg, &hook).unwrap();
    assert_identical(&plain, &hooked);

    // Every injection lands in exactly one outcome bucket and one rung
    // bucket, and each produced a latency observation.
    let snap = registry.snapshot();
    assert_eq!(outcome_counter_sum(&snap), 20);
    let rung_sum: u64 = snap
        .counters()
        .filter(|(name, _)| name.starts_with("campaign_rung_hits_total{rung="))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(rung_sum, 20);
    assert_eq!(
        snap.histogram("campaign_injection_seconds")
            .unwrap()
            .count(),
        20
    );

    // The structured event stream narrates the same campaign.
    let names: Vec<String> = sink.events().iter().map(|e| e.name().to_string()).collect();
    for expected in ["golden.done", "ladder.done", "campaign.done"] {
        assert!(names.contains(&expected.to_string()), "missing {expected}");
    }
}

#[test]
fn hooked_campaign_is_thread_count_invariant_too() {
    // Telemetry shards per thread; harvested totals must not depend on
    // the worker count any more than the outcomes do.
    let arch = quadro_fx_5600();
    let w = VectorAdd::new(512, 3);
    let mut one = quick_cfg(16);
    one.threads = 1;
    let mut four = quick_cfg(16);
    four.threads = 4;

    let reg1 = MetricsRegistry::new();
    let r1 = run_campaign_hooked(
        &arch,
        &w,
        Structure::VectorRegisterFile,
        one,
        &RegistryHook::new(&reg1),
    )
    .unwrap();
    let reg4 = MetricsRegistry::new();
    let r4 = run_campaign_hooked(
        &arch,
        &w,
        Structure::VectorRegisterFile,
        four,
        &RegistryHook::new(&reg4),
    )
    .unwrap();
    assert_identical(&r1, &r4);
    assert_eq!(outcome_counter_sum(&reg1.snapshot()), 16);
    assert_eq!(outcome_counter_sum(&reg4.snapshot()), 16);
}

#[test]
fn hooked_study_point_matches_noop_point() {
    let arch = geforce_gtx_480();
    // histogram uses local memory, so both structures get campaigns.
    let w = Histogram::new(1024, 64, 5);
    let cfg = StudyConfig {
        campaign: quick_cfg(10),
        workload_seed: 5,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };

    let plain = evaluate_point(&arch, &w, &cfg).unwrap();
    let registry = MetricsRegistry::new();
    let sink = MemorySink::new();
    let hook = RegistryHook::with_sink(&registry, &sink);
    let hooked = evaluate_point_hooked(&arch, &w, &cfg, &hook).unwrap();

    assert_eq!(plain.cycles, hooked.cycles);
    assert_eq!(plain.rf.tally, hooked.rf.tally);
    assert_eq!(plain.lds.tally, hooked.lds.tally);
    assert_eq!(plain.rf.avf_fi.to_bits(), hooked.rf.avf_fi.to_bits());
    assert_eq!(plain.lds.avf_fi.to_bits(), hooked.lds.avf_fi.to_bits());
    assert_eq!(plain.epf.to_bits(), hooked.epf.to_bits());

    // RF campaign + LDS campaign: 2 x 10 injections in the counters.
    let snap = registry.snapshot();
    assert_eq!(outcome_counter_sum(&snap), 20);
    assert_eq!(snap.histogram("study_point_seconds").unwrap().count(), 1);
    let names: Vec<String> = sink.events().iter().map(|e| e.name().to_string()).collect();
    assert!(names.contains(&"study.point".to_string()), "{names:?}");
    assert_eq!(
        names.iter().filter(|n| *n == "campaign.done").count(),
        2,
        "{names:?}"
    );
}
