//! The span tracer must be observe-only and structurally deterministic:
//! tracing a study point never changes its results, and the
//! duration-stripped span tree (`SpanTree::structural_text`) is
//! byte-identical at any `--jobs` count. Per-worker timelines and span
//! lanes are the only job-count-dependent artifacts, and
//! `structural_text` excludes exactly those.

use gpu_archs::quadro_fx_5600;
use gpu_workloads::Transpose;
use grel_core::study::{evaluate_point_hooked, StudyConfig};
use grel_telemetry::{Json, NoopHook, SpanHook, SpanRecorder, SpanTree};

fn cfg(threads: usize) -> StudyConfig {
    let mut cfg = StudyConfig {
        campaign: grel_core::campaign::CampaignConfig::quick(9),
        workload_seed: 9,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };
    cfg.campaign.injections = 24;
    cfg.campaign.threads = threads;
    // Pruning would pre-classify most transient sites and leave no
    // replays to trace, so give the structural tree real injection
    // spans to bite on.
    cfg.campaign.prune = false;
    cfg.campaign.early_exit = false;
    cfg
}

fn traced_point(threads: usize) -> (grel_core::study::EvalPoint, SpanTree) {
    let arch = quadro_fx_5600();
    let w = Transpose::new(32, 9);
    let recorder = SpanRecorder::new();
    let point = evaluate_point_hooked(&arch, &w, &cfg(threads), &SpanHook::new(&recorder)).unwrap();
    (point, recorder.finish())
}

#[test]
fn structural_tree_is_job_count_invariant() {
    let (p1, t1) = traced_point(1);
    let (p2, t2) = traced_point(2);
    let (p8, t8) = traced_point(8);

    // Same campaign results at every job count (the runner's contract)…
    assert_eq!(p1.rf.tally, p2.rf.tally);
    assert_eq!(p1.rf.tally, p8.rf.tally);
    assert_eq!(p1.lds.tally, p8.lds.tally);

    // …and the same duration-stripped tree, byte for byte.
    let s1 = t1.structural_text();
    assert_eq!(s1, t2.structural_text(), "jobs=1 vs jobs=2");
    assert_eq!(s1, t8.structural_text(), "jobs=1 vs jobs=8");

    // The tree actually traced the campaign: a root point span, phase
    // children, and one span per replayed injection.
    assert!(!t1.is_empty());
    assert_eq!(t1.dropped, 0);
    assert!(s1.starts_with("point:transpose@"), "{s1}");
    assert!(s1.contains("\n  golden "), "{s1}");
    assert!(s1.contains("\n  campaign:rf "), "{s1}");
    assert!(s1.contains("\n    replay "), "{s1}");
    assert!(s1.contains("\n    merge"), "{s1}");
    let rf_inj = t1
        .spans
        .iter()
        .filter(|n| n.path.contains("/campaign:rf/") && n.name.starts_with("inj:"))
        .count();
    assert_eq!(rf_inj, 24, "one span per unpruned RF injection");

    // Worker timelines exist in the full tree but are excluded from the
    // structural text (their count is the one thing --jobs may change).
    assert!(t8.nodes_named(|n| n.starts_with("worker:")).count() >= 2);
    assert!(!s1.contains("worker:"), "{s1}");
}

#[test]
fn span_tracing_is_observe_only() {
    let arch = quadro_fx_5600();
    let w = Transpose::new(32, 9);
    let plain = evaluate_point_hooked(&arch, &w, &cfg(2), &NoopHook).unwrap();
    let (traced, _) = traced_point(2);

    assert_eq!(plain.cycles, traced.cycles);
    assert_eq!(plain.rf.tally, traced.rf.tally);
    assert_eq!(plain.lds.tally, traced.lds.tally);
    assert_eq!(plain.rf.avf_fi.to_bits(), traced.rf.avf_fi.to_bits());
    assert_eq!(plain.lds.avf_fi.to_bits(), traced.lds.avf_fi.to_bits());
    assert_eq!(plain.epf.to_bits(), traced.epf.to_bits());
}

#[test]
fn chrome_trace_export_is_valid_json_with_events() {
    let (_, tree) = traced_point(2);
    let text = tree.to_chrome_trace().to_string();
    let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
    let Json::Obj(fields) = doc else {
        panic!("chrome trace root must be an object");
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let Json::Arr(events) = events else {
        panic!("traceEvents must be an array");
    };
    // At least the metadata events plus one complete event per span.
    assert!(
        events.len() > tree.spans.len(),
        "{} events for {} spans",
        events.len(),
        tree.spans.len()
    );
}
