//! The flight recorder must only observe. Campaign outcomes with
//! provenance tracing enabled have to be bit-identical to the
//! [`simt_sim::NoopObserver`] path at any worker count, and on a
//! hand-built kernel with a known dataflow the recorded masking reasons
//! and first-read latencies must match what the program text dictates.

use gpu_archs::geforce_gtx_480;
use gpu_workloads::{Histogram, VectorAdd, Workload};
use grel_core::campaign::{
    golden_run, run_campaign_with_ladder_hooked, CampaignConfig, CampaignResult, CheckpointLadder,
};
use grel_core::provenance::{
    golden_write_log, run_campaign_with_provenance_hooked, trace_one, MaskingReason,
};
use grel_telemetry::NoopHook;
use simt_isa::{KernelBuilder, MemSpace};
use simt_sim::{
    Buffer, FaultSite, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError, SimObserver, Structure,
};

fn assert_identical(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.structure, b.structure);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.golden_cycles, b.golden_cycles);
    assert_eq!(a.margin_99.to_bits(), b.margin_99.to_bits());
}

/// Runs one structure's campaign three ways — untraced, traced at one
/// worker, traced at eight — and checks the traced paths change nothing
/// and agree with each other record-for-record.
fn check_equivalence(workload: &dyn Workload, structure: Structure, injections: u32) {
    let arch = geforce_gtx_480();
    let mut cfg = CampaignConfig::quick(9);
    cfg.injections = injections;
    cfg.threads = 1;
    let golden = golden_run(&arch, workload).unwrap();
    let ladder = CheckpointLadder::build(&arch, workload, &golden, &cfg).unwrap();
    let writes = golden_write_log(&arch, workload).unwrap();

    let baseline = run_campaign_with_ladder_hooked(
        &arch, workload, structure, cfg, &golden, &ladder, &NoopHook,
    )
    .unwrap();
    let (traced1, recs1, agg1) = run_campaign_with_provenance_hooked(
        &arch, workload, structure, cfg, &golden, &writes, &ladder, &NoopHook,
    )
    .unwrap();
    let mut cfg8 = cfg;
    cfg8.threads = 8;
    let (traced8, recs8, agg8) = run_campaign_with_provenance_hooked(
        &arch, workload, structure, cfg8, &golden, &writes, &ladder, &NoopHook,
    )
    .unwrap();

    // Observing changes nothing: tallies, margins and cycle counts are
    // bit-identical to the NoopObserver path.
    assert_identical(&baseline, &traced1);
    assert_identical(&baseline, &traced8);
    // And the recorder itself is deterministic across worker counts.
    assert_eq!(recs1, recs8);
    assert_eq!(agg1, agg8);
    assert_eq!(recs1.len(), injections as usize);
    // Every record pairs with its outcome: masked runs carry a masking
    // reason, SDC/DUE runs never do.
    for p in &recs1 {
        assert_eq!(
            p.masking.is_some(),
            p.outcome == grel_core::campaign::Outcome::Masked,
            "{p:?}"
        );
    }
}

#[test]
fn rf_campaign_with_provenance_is_bit_identical_and_job_invariant() {
    check_equivalence(&VectorAdd::new(1024, 9), Structure::VectorRegisterFile, 24);
}

#[test]
fn lds_campaign_with_provenance_is_bit_identical_and_job_invariant() {
    check_equivalence(&Histogram::new(1024, 64, 5), Structure::LocalMemory, 12);
}

// ---------------------------------------------------------------------
// Hand-built kernel with a provable dataflow.
// ---------------------------------------------------------------------

/// One thread, one launch:
///
/// ```text
/// dead  = 7            // written, never read again
/// live  = 5            // written …
/// pad0..pad3 = k       // four filler writes to open a cycle gap
/// addr  = out
/// [out] = live         // … read here, several cycles later
/// ```
///
/// A flip landed in `dead`'s physical word after its write must be
/// masked as never-read; a flip landed in `live`'s word inside the
/// write→read window must be seen (finite first-read latency).
#[derive(Debug, Clone)]
struct Probe;

impl Probe {
    fn kernel(&self) -> simt_isa::Kernel {
        let mut kb = KernelBuilder::new("probe", 1);
        let out = kb.param(0);
        let dead = kb.vreg();
        let live = kb.vreg();
        let addr = kb.vreg();
        kb.mov(dead, 7u32);
        kb.mov(live, 5u32);
        for i in 0..4u32 {
            let pad = kb.vreg();
            kb.mov(pad, 100 + i);
        }
        kb.mov(addr, out);
        kb.st(MemSpace::Global, addr, live);
        kb.exit();
        kb.build().expect("probe kernel is valid")
    }
}

#[derive(Clone)]
struct ProbePlan {
    w: Probe,
    stage: u32,
    out: Option<Buffer>,
}

impl LaunchPlan for ProbePlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        match self.stage {
            1 => {
                let kernel = simt_isa::lower(&self.w.kernel(), gpu.arch().caps()).map_err(|e| {
                    SimError::LaunchConfig {
                        reason: e.to_string(),
                    }
                })?;
                let out = gpu.alloc_words(1);
                self.out = Some(out);
                Ok(PlanStep::Launch {
                    kernel,
                    cfg: LaunchConfig::linear(1, 1),
                    params: vec![out.addr()],
                })
            }
            _ => Ok(PlanStep::Done(
                gpu.read_words(self.out.expect("launched"), 1),
            )),
        }
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn uses_local_memory(&self) -> bool {
        false
    }
    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(ProbePlan {
            w: self.clone(),
            stage: 0,
            out: None,
        })
    }
    fn reference(&self) -> Vec<u32> {
        vec![5]
    }
}

/// Records every vector-register access so the test can map the probe's
/// virtual registers to physical RF words empirically.
#[derive(Default)]
struct RfLog {
    writes: Vec<(u32, u64)>,
    reads: Vec<(u32, u64)>,
}

impl SimObserver for RfLog {
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        if sm == 0 {
            self.writes.push((word, cycle));
        }
    }
    fn on_rf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        if sm == 0 {
            self.reads.push((word, cycle));
        }
    }
}

fn rf_site(word: u32, bit: u8, cycle: u64) -> FaultSite {
    FaultSite::new(Structure::VectorRegisterFile, 0, word, bit, cycle)
}

#[test]
fn flight_recorder_matches_known_dataflow() {
    let arch = geforce_gtx_480();
    let probe = Probe;

    // Fault-free pass with the access log on: find each word's write
    // cycle and (optional) first read cycle.
    let mut gpu = Gpu::new(arch.clone());
    let mut log = RfLog::default();
    let out = probe.run(&mut gpu, &mut log).unwrap();
    assert_eq!(out, probe.reference());

    let first_read_after = |word: u32, cycle: u64| {
        log.reads
            .iter()
            .filter(|(w, c)| *w == word && *c > cycle)
            .map(|(_, c)| *c)
            .min()
    };

    // A word written exactly once and never read afterwards — the
    // physical home of `dead` or one of the pads.
    let (dead_word, dead_write) = *log
        .writes
        .iter()
        .find(|(w, c)| {
            first_read_after(*w, *c).is_none()
                && log.writes.iter().filter(|(w2, _)| w2 == w).count() == 1
        })
        .expect("probe kernel has a written-then-never-read register");

    // The words whose first read comes at least two cycles after a
    // write: the physical homes of `live` and `addr` (both feed the
    // store), plus any dispatch-time thread inputs the store path
    // consumes. Every one of them is a read-before-overwrite site.
    let gapped: Vec<(u32, u64, u64)> = log
        .writes
        .iter()
        .filter_map(|(w, c)| first_read_after(*w, *c).map(|r| (*w, *c, r)))
        .filter(|(_, c, r)| *r >= c + 2)
        .collect();
    assert!(
        !gapped.is_empty(),
        "probe kernel has a write-then-read register with a cycle gap"
    );

    // Flip a never-read word after its write: masked, reason never-read,
    // no first read, no divergence.
    let trace = trace_one(&arch, &probe, rf_site(dead_word, 3, dead_write + 1), 10).unwrap();
    assert_eq!(
        trace.provenance.outcome,
        grel_core::campaign::Outcome::Masked,
        "{trace:?}"
    );
    assert_eq!(
        trace.provenance.masking,
        Some(MaskingReason::NeverRead),
        "{trace:?}"
    );
    assert_eq!(trace.provenance.first_read_latency, None, "{trace:?}");
    assert_eq!(trace.provenance.cycles_to_divergence, None, "{trace:?}");
    let narrative = trace.narrative();
    assert!(narrative.contains("never"), "{narrative}");

    // Flip each gapped word inside its write→read window: the corrupted
    // value is architecturally read before being overwritten, so every
    // latency is finite and equals the distance to the recorded read.
    let mut outcomes = Vec::new();
    for (word, write, read) in gapped {
        let inject_at = write + 1;
        let trace = trace_one(&arch, &probe, rf_site(word, 1, inject_at), 10).unwrap();
        assert_eq!(
            trace.provenance.first_read_latency,
            Some(read - inject_at),
            "{trace:?}"
        );
        assert_ne!(
            trace.provenance.masking,
            Some(MaskingReason::NeverRead),
            "{trace:?}"
        );
        outcomes.push(trace.provenance.outcome);
    }
    // One of those homes holds the stored constant: bit 1 flips the
    // output word 5 -> 7, a silent data corruption. (A flip in the
    // address register instead raises a DUE — also read, also unmasked.)
    assert!(
        outcomes.contains(&grel_core::campaign::Outcome::Sdc),
        "{outcomes:?}"
    );
}
