//! The streaming convergence monitor folds the *merged* outcome stream,
//! after the runner's scatter-merge — so the `campaign.convergence`
//! event stream must be a pure function of the campaign definition:
//! byte-identical at any `--jobs`, with pruning or batching on or off,
//! and independent of every other replay fast path. These tests pin
//! that contract the same way `parallel_determinism.rs` pins tallies.

use gpu_archs::{geforce_gtx_480, quadro_fx_5600};
use gpu_workloads::{Histogram, VectorAdd};
use grel_core::campaign::{run_campaign_hooked, CampaignConfig};
use grel_telemetry::{Json, MemorySink, MetricsRegistry, RegistryHook};
use simt_sim::Structure;

/// Runs one RF campaign and returns the serialized
/// `campaign.convergence` stream, one JSON line per event.
fn convergence_stream(cfg: CampaignConfig) -> Vec<String> {
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(1024, 9);
    let registry = MetricsRegistry::new();
    let sink = MemorySink::new();
    let hook = RegistryHook::with_sink(&registry, &sink);
    run_campaign_hooked(&arch, &w, Structure::VectorRegisterFile, cfg, &hook)
        .expect("campaign runs");
    sink.events()
        .iter()
        .filter(|e| e.name() == "campaign.convergence")
        .map(|e| e.to_json().to_string())
        .collect()
}

fn cfg_with(threads: usize, prune: bool, batch: bool) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick(9);
    cfg.injections = 60;
    cfg.threads = threads;
    cfg.prune = prune;
    cfg.early_exit = prune;
    cfg.batch = batch;
    cfg.convergence = 8;
    cfg
}

#[test]
fn convergence_stream_is_job_count_invariant() {
    let reference = convergence_stream(cfg_with(1, true, true));
    assert!(!reference.is_empty(), "cadence 8 over 60 must emit events");
    for jobs in [2usize, 8] {
        let other = convergence_stream(cfg_with(jobs, true, true));
        assert_eq!(
            reference, other,
            "campaign.convergence stream must be byte-identical at {jobs} jobs"
        );
    }
}

#[test]
fn convergence_stream_is_invariant_to_pruning_and_batching() {
    let reference = convergence_stream(cfg_with(2, true, true));
    for (prune, batch) in [(true, false), (false, false), (false, true)] {
        let other = convergence_stream(cfg_with(2, prune, batch));
        assert_eq!(
            reference, other,
            "stream must not depend on prune={prune} batch={batch}"
        );
    }
}

#[test]
fn convergence_stream_narrates_the_whole_campaign() {
    let events = convergence_stream(cfg_with(4, true, true));
    // 60 injections at cadence 8: snapshots at 8, 16, …, 56 plus the
    // final flush at 60.
    assert_eq!(events.len(), 8);
    let parsed: Vec<Json> = events
        .iter()
        .map(|line| Json::parse(line).expect("event line parses"))
        .collect();
    let seen: Vec<u64> = parsed
        .iter()
        .map(|j| j.get("seen").and_then(Json::as_u64).expect("seen field"))
        .collect();
    assert_eq!(seen, vec![8, 16, 24, 32, 40, 48, 56, 60]);
    for j in &parsed {
        assert_eq!(j.get("planned").and_then(Json::as_u64), Some(60));
        assert_eq!(j.get("structure").and_then(Json::as_str), Some("rf"));
        assert_eq!(
            j.get("fault_kind").and_then(Json::as_str),
            Some("transient")
        );
        let counts: u64 = ["masked", "sdc", "due", "hang"]
            .iter()
            .map(|k| j.get(k).and_then(Json::as_u64).expect("outcome count"))
            .sum();
        assert_eq!(counts, j.get("seen").and_then(Json::as_u64).unwrap());
    }
    // The finite-population margin tightens (never widens) as samples
    // accumulate, and the remaining-injections projection counts down.
    let margins: Vec<f64> = parsed
        .iter()
        .map(|j| j.get("margin99").and_then(Json::as_f64).expect("margin99"))
        .collect();
    assert!(
        margins.windows(2).all(|w| w[1] <= w[0]),
        "margin must shrink: {margins:?}"
    );
    let remaining: Vec<u64> = parsed
        .iter()
        .map(|j| {
            j.get("projected_remaining")
                .and_then(Json::as_u64)
                .expect("projection")
        })
        .collect();
    assert!(
        remaining.windows(2).all(|w| w[1] <= w[0]),
        "projection must count down: {remaining:?}"
    );
}

#[test]
fn zero_cadence_disables_the_stream() {
    let mut cfg = cfg_with(2, true, true);
    cfg.convergence = 0;
    assert!(convergence_stream(cfg).is_empty());
}

#[test]
fn lds_campaign_streams_under_its_own_label() {
    let arch = quadro_fx_5600();
    let w = Histogram::new(2048, 16, 5);
    let mut cfg = CampaignConfig::quick(5);
    cfg.injections = 24;
    cfg.threads = 2;
    cfg.convergence = 6;
    let registry = MetricsRegistry::new();
    let sink = MemorySink::new();
    let hook = RegistryHook::with_sink(&registry, &sink);
    run_campaign_hooked(&arch, &w, Structure::LocalMemory, cfg, &hook).expect("campaign runs");
    let events: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.name() == "campaign.convergence")
        .collect();
    assert_eq!(events.len(), 4);
    for e in &events {
        assert_eq!(e.get("structure").and_then(Json::as_str), Some("lds"));
        assert_eq!(e.get("workload").and_then(Json::as_str), Some("histogram"));
    }
}
