//! Bit-plane batched replay must only share work, never change it.
//! Campaign results with batching on have to be bit-identical to scalar
//! one-site replay at any worker count, with pruning on or off — the
//! same contract the checkpoint ladder and the lifetime oracle already
//! honour. A separate test pins that the batch path actually fires
//! (shared passes run, lanes fork) rather than passing vacuously.

use gpu_archs::geforce_gtx_480;
use gpu_workloads::{Histogram, Transpose, VectorAdd, Workload};
use grel_core::campaign::{run_campaign_parallel, CampaignConfig, CampaignResult};
use grel_telemetry::{MetricsRegistry, RegistryHook};
use simt_sim::Structure;

/// Field-by-field equality, floats compared bit-for-bit.
fn assert_identical(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.structure, b.structure, "{label}");
    assert_eq!(a.tally, b.tally, "{label}");
    assert_eq!(a.golden_cycles, b.golden_cycles, "{label}");
    assert_eq!(a.population, b.population, "{label}");
    assert_eq!(a.margin_99.to_bits(), b.margin_99.to_bits(), "{label}");
    assert_eq!(a.avf().to_bits(), b.avf().to_bits(), "{label}");
}

fn cfg(injections: u32, prune: bool, batch: bool) -> CampaignConfig {
    let mut c = CampaignConfig::quick(9);
    c.injections = injections;
    c.threads = 1;
    c.prune = prune;
    c.early_exit = prune;
    c.batch = batch;
    c
}

/// One structure's campaign with batching on and off, each at jobs
/// 1/2/8 and with pruning on and off — all bit-identical to the jobs-1
/// scalar unbatched run.
fn check_batch_equivalence(workload: &dyn Workload, structure: Structure, injections: u32) {
    let arch = geforce_gtx_480();
    let scalar =
        run_campaign_parallel(&arch, workload, structure, cfg(injections, false, false), 1)
            .unwrap();
    for jobs in [1usize, 2, 8] {
        for (prune, batch, label) in [
            (false, true, "batched"),
            (true, false, "pruned scalar"),
            (true, true, "pruned + batched"),
        ] {
            let run = run_campaign_parallel(
                &arch,
                workload,
                structure,
                cfg(injections, prune, batch),
                jobs,
            )
            .unwrap();
            assert_identical(
                &scalar,
                &run,
                &format!(
                    "{} / {structure}: {label} at jobs = {jobs}",
                    workload.name()
                ),
            );
        }
    }
}

#[test]
fn rf_campaigns_are_batch_invariant_and_job_invariant() {
    check_batch_equivalence(&VectorAdd::new(1024, 9), Structure::VectorRegisterFile, 24);
    check_batch_equivalence(
        &Histogram::new(1024, 64, 5),
        Structure::VectorRegisterFile,
        16,
    );
}

#[test]
fn lds_campaigns_are_batch_invariant_and_job_invariant() {
    check_batch_equivalence(&Histogram::new(1024, 64, 5), Structure::LocalMemory, 16);
    check_batch_equivalence(&Transpose::new(32, 5), Structure::LocalMemory, 12);
}

/// The batch path must actually fire: with pruning off every sampled
/// site reaches a worker, consecutive same-rung sites share a pass, and
/// on a workload with real SDCs lanes must either fork or be caught by
/// the final-output read. An unforked, unread lane is masked by
/// construction, so forks plus final-read SDCs bound the failure count
/// from above.
#[test]
fn batching_fires_and_forks_on_a_real_workload() {
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(1024, 9);
    let reg = MetricsRegistry::new();
    let hook = RegistryHook::new(&reg);
    let r = grel_core::campaign::run_campaign_parallel_hooked(
        &arch,
        &w,
        Structure::VectorRegisterFile,
        cfg(32, false, true),
        2,
        &hook,
    )
    .unwrap();
    let snap = reg.snapshot();
    let batched = snap.counter("campaign_batched_total").unwrap_or(0);
    let batches = snap.counter("campaign_batches_total").unwrap_or(0);
    let forks = snap.counter("campaign_batch_forks_total").unwrap_or(0);
    let final_sdcs = snap.counter("campaign_batch_final_sdc_total").unwrap_or(0);
    assert!(batched > 0, "no sites rode a shared pass");
    assert!(batches > 0 && batches < batched, "batches must share sites");
    assert!(
        forks + final_sdcs >= r.tally.failures(),
        "every failure must come from a forked lane or a divergent \
         final read: {forks} forks + {final_sdcs} final-read SDCs, {:?}",
        r.tally
    );
    assert_eq!(
        snap.counter("campaign_batch_fallbacks_total").unwrap_or(0),
        0,
        "the shared pass must never abort on a healthy workload"
    );
    // Per-site accounting still covers every sampled site.
    let by_outcome: u64 = snap
        .counters()
        .filter(|(n, _)| n.starts_with("campaign_injections_total{outcome="))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(by_outcome, 32, "every sampled site lands in one outcome");
}
