//! The lifetime-oracle fast path must only skip work, never change it.
//! Campaign and study results with pruning and early-exit on have to be
//! bit-identical to full replay at any worker count, and on a hand-built
//! kernel with a known dataflow the oracle's live-interval map must agree
//! **exactly** with the refined ([`AceMode::WriteToLastRead`]) ACE count
//! — the two are independent implementations of the same lifetime rule.

use gpu_archs::geforce_gtx_480;
use gpu_workloads::{Histogram, Transpose, VectorAdd, Workload};
use grel_core::ace::{AceAnalyzer, AceMode, LifetimeOracle};
use grel_core::campaign::{run_campaign_parallel, CampaignConfig, CampaignResult};
use grel_core::study::{run_study_parallel, StudyConfig};
use grel_telemetry::{MetricsRegistry, RegistryHook};
use simt_isa::{KernelBuilder, MemSpace};
use simt_sim::{Buffer, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError, Structure};

/// Field-by-field equality, floats compared bit-for-bit.
fn assert_identical(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.structure, b.structure, "{label}");
    assert_eq!(a.tally, b.tally, "{label}");
    assert_eq!(a.golden_cycles, b.golden_cycles, "{label}");
    assert_eq!(a.population, b.population, "{label}");
    assert_eq!(a.margin_99.to_bits(), b.margin_99.to_bits(), "{label}");
    assert_eq!(a.avf().to_bits(), b.avf().to_bits(), "{label}");
}

fn cfg(injections: u32, prune: bool, early_exit: bool) -> CampaignConfig {
    let mut c = CampaignConfig::quick(9);
    c.injections = injections;
    c.threads = 1;
    c.prune = prune;
    c.early_exit = early_exit;
    c
}

/// One structure's campaign four ways — full replay, early-exit only,
/// pruned, each at jobs 1/2/8 — all bit-identical to the jobs-1 full
/// replay.
fn check_campaign_equivalence(workload: &dyn Workload, structure: Structure, injections: u32) {
    let arch = geforce_gtx_480();
    let full = run_campaign_parallel(&arch, workload, structure, cfg(injections, false, false), 1)
        .unwrap();
    for jobs in [1usize, 2, 8] {
        for (prune, early_exit, label) in [
            (false, false, "full replay"),
            (false, true, "early-exit only"),
            (true, true, "pruned"),
        ] {
            let run = run_campaign_parallel(
                &arch,
                workload,
                structure,
                cfg(injections, prune, early_exit),
                jobs,
            )
            .unwrap();
            assert_identical(
                &full,
                &run,
                &format!(
                    "{} / {structure}: {label} at jobs = {jobs}",
                    workload.name()
                ),
            );
        }
    }
}

#[test]
fn rf_campaigns_are_prune_invariant_and_job_invariant() {
    check_campaign_equivalence(&VectorAdd::new(1024, 9), Structure::VectorRegisterFile, 24);
    check_campaign_equivalence(
        &Histogram::new(1024, 64, 5),
        Structure::VectorRegisterFile,
        16,
    );
}

#[test]
fn lds_campaigns_are_prune_invariant_and_job_invariant() {
    check_campaign_equivalence(&Histogram::new(1024, 64, 5), Structure::LocalMemory, 16);
    check_campaign_equivalence(&Transpose::new(32, 5), Structure::LocalMemory, 12);
}

#[test]
fn study_tallies_are_prune_invariant_at_jobs_1_2_8() {
    let archs = vec![geforce_gtx_480()];
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VectorAdd::new(512, 13)),
        Box::new(Histogram::new(512, 32, 13)),
    ];
    let study_cfg = |prune: bool| StudyConfig {
        campaign: cfg(8, prune, prune),
        workload_seed: 13,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };
    let full = run_study_parallel(&archs, &workloads, &study_cfg(false), 1).unwrap();
    for jobs in [1usize, 2, 8] {
        let pruned = run_study_parallel(&archs, &workloads, &study_cfg(true), jobs).unwrap();
        assert_eq!(full.points.len(), pruned.points.len());
        for (a, b) in full.points.iter().zip(&pruned.points) {
            assert_eq!(a.workload, b.workload, "jobs = {jobs}");
            assert_eq!(a.device, b.device, "jobs = {jobs}");
            assert_eq!(a.rf.tally, b.rf.tally, "jobs = {jobs}");
            assert_eq!(a.lds.tally, b.lds.tally, "jobs = {jobs}");
            assert_eq!(a.rf.avf_fi.to_bits(), b.rf.avf_fi.to_bits());
            assert_eq!(a.rf.avf_ace.to_bits(), b.rf.avf_ace.to_bits());
            assert_eq!(a.lds.avf_fi.to_bits(), b.lds.avf_fi.to_bits());
            assert_eq!(a.epf.to_bits(), b.epf.to_bits());
        }
    }
}

/// The fast path must actually fire: on a low-AVF workload most sampled
/// RF sites fall outside any live interval, so a hooked pruned campaign
/// records a substantial `campaign_pruned_total` — and the same campaign
/// with pruning off replays everything and records none.
#[test]
fn pruning_fires_on_a_low_avf_workload() {
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(1024, 9);
    let reg = MetricsRegistry::new();
    let hook = RegistryHook::new(&reg);
    let pruned = grel_core::campaign::run_campaign_parallel_hooked(
        &arch,
        &w,
        Structure::VectorRegisterFile,
        cfg(32, true, true),
        2,
        &hook,
    )
    .unwrap();
    let snap = reg.snapshot();
    let pruned_count = snap.counter("campaign_pruned_total").unwrap_or(0);
    assert!(pruned_count > 0, "oracle pruned nothing on vectoradd RF");
    assert!(
        pruned_count <= pruned.tally.masked,
        "every pruned site is a masked outcome"
    );
    // Pruned sites still produce the full per-injection telemetry.
    let by_outcome: u64 = snap
        .counters()
        .filter(|(n, _)| n.starts_with("campaign_injections_total{outcome="))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(by_outcome, 32, "every sampled site lands in one outcome");
    assert_eq!(
        snap.counter("campaign_rung_hits_total{rung=\"pruned\"}")
            .unwrap_or(0),
        pruned_count,
        "pruned sites hit the synthetic 'pruned' rung"
    );
}

// ---------------------------------------------------------------------
// Hand-built kernel with a provable dataflow: oracle vs refined ACE.
// ---------------------------------------------------------------------

/// One thread, one launch (same shape as the provenance probe):
///
/// ```text
/// dead  = 7            // written, never read again
/// live  = 5            // written …
/// pad0..pad3 = k       // four filler writes to open a cycle gap
/// addr  = out
/// [out] = live         // … read here, several cycles later
/// ```
#[derive(Debug, Clone)]
struct Probe;

impl Probe {
    fn kernel(&self) -> simt_isa::Kernel {
        let mut kb = KernelBuilder::new("probe", 1);
        let out = kb.param(0);
        let dead = kb.vreg();
        let live = kb.vreg();
        let addr = kb.vreg();
        kb.mov(dead, 7u32);
        kb.mov(live, 5u32);
        for i in 0..4u32 {
            let pad = kb.vreg();
            kb.mov(pad, 100 + i);
        }
        kb.mov(addr, out);
        kb.st(MemSpace::Global, addr, live);
        kb.exit();
        kb.build().expect("probe kernel is valid")
    }
}

#[derive(Clone)]
struct ProbePlan {
    w: Probe,
    stage: u32,
    out: Option<Buffer>,
}

impl LaunchPlan for ProbePlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        match self.stage {
            1 => {
                let kernel = simt_isa::lower(&self.w.kernel(), gpu.arch().caps()).map_err(|e| {
                    SimError::LaunchConfig {
                        reason: e.to_string(),
                    }
                })?;
                let out = gpu.alloc_words(1);
                self.out = Some(out);
                Ok(PlanStep::Launch {
                    kernel,
                    cfg: LaunchConfig::linear(1, 1),
                    params: vec![out.addr()],
                })
            }
            _ => Ok(PlanStep::Done(
                gpu.read_words(self.out.expect("launched"), 1),
            )),
        }
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn uses_local_memory(&self) -> bool {
        false
    }
    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(ProbePlan {
            w: self.clone(),
            stage: 0,
            out: None,
        })
    }
    fn reference(&self) -> Vec<u32> {
        vec![5]
    }
}

/// The oracle's interval map and the refined ACE tracker implement the
/// same write→last-read lifetime rule independently — one as per-word
/// intervals for O(log n) membership tests, one as a running bit-cycle
/// sum. On the probe kernel the two must agree **exactly**, both in raw
/// bit-cycles and in the derived AVF.
#[test]
fn refined_ace_equals_oracle_live_fraction_on_the_probe_kernel() {
    let arch = geforce_gtx_480();
    let probe = Probe;

    // One golden run drives both observers at once, exactly like the
    // study's capture path.
    let mut gpu = Gpu::new(arch.clone());
    let mut ace = AceAnalyzer::with_mode(&arch, AceMode::WriteToLastRead);
    let mut oracle = LifetimeOracle::new(&arch);
    let out = probe.run(&mut gpu, &mut (&mut ace, &mut oracle)).unwrap();
    assert_eq!(out, probe.reference());
    let cycles = gpu.app_cycle();
    assert!(cycles > 0);

    for s in [Structure::VectorRegisterFile, Structure::LocalMemory] {
        let report = ace.report(s);
        let live = oracle.live_bit_cycles(s);
        assert_eq!(
            report.ace_bit_cycles, live,
            "{s}: refined ACE bit-cycles vs oracle live bit-cycles"
        );
        let denom = (report.total_bits as f64) * (cycles as f64);
        let oracle_avf = if denom > 0.0 {
            live as f64 / denom
        } else {
            0.0
        };
        assert_eq!(
            report.avf_ace.to_bits(),
            oracle_avf.to_bits(),
            "{s}: refined ACE AVF vs oracle live fraction"
        );
    }
    // The probe's RF genuinely has live state, so the equality above is
    // not vacuous.
    assert!(oracle.live_bit_cycles(Structure::VectorRegisterFile) > 0);
    // And the dead register's post-write window really is prunable: every
    // live interval the oracle kept ends at a read, so at least one
    // sampled cycle of the probe's short run must be dead for some word.
    let dead_somewhere = (0..arch.rf_words_per_sm()).any(|word| {
        (0..cycles).any(|cycle| {
            oracle.is_dead(simt_sim::FaultSite::new(
                Structure::VectorRegisterFile,
                0,
                word,
                0,
                cycle,
            ))
        })
    });
    assert!(dead_somewhere, "probe kernel has a prunable RF site");
}

/// The lifetime oracle's "dead" verdict is only sound for transient
/// flips: a dead window means the word is overwritten before its next
/// read, which erases a one-shot flip but *not* a stuck-at fault — the
/// stuck cell re-asserts on that very overwrite. This test pins both
/// halves of the kind gate. First, `is_dead` must refuse the stuck-at
/// twin of every oracle-dead transient site (the gate). Second, at
/// least one of those twins must replay to a real failure — proving a
/// campaign that pruned stuck-at sites through the oracle would
/// silently misclassify SDCs as masked, i.e. the gate is load-bearing,
/// not defensive.
#[test]
fn oracle_pruning_would_be_unsound_for_stuck_at_faults() {
    use grel_core::campaign::{golden_run, run_injections, Outcome};
    use simt_sim::{FaultKind, FaultSite};

    let arch = geforce_gtx_480();
    let probe = Probe;
    let mut gpu = Gpu::new(arch.clone());
    let mut oracle = LifetimeOracle::new(&arch);
    let out = probe.run(&mut gpu, &mut oracle).unwrap();
    assert_eq!(out, probe.reference());
    let cycles = gpu.app_cycle();

    // Every oracle-dead transient site on a word the kernel actually
    // uses: words that are dead at *every* cycle were never allocated
    // (a stuck-at there is trivially masked too), so only words with
    // some live window are interesting. The probe's handful of vregs
    // spread one word per lane, so scan the first 16 vregs' worth. Bit
    // 1 is chosen so a stuck-at-1 twin visibly corrupts the stored
    // value: `live` holds 5 = 0b101, and 5 | 0b010 = 7.
    let mut dead_sites = Vec::new();
    for word in 0..(16 * arch.warp_size) {
        let dead_at: Vec<u64> = (0..cycles)
            .filter(|&cycle| {
                oracle.is_dead(FaultSite::new(
                    Structure::VectorRegisterFile,
                    0,
                    word,
                    1,
                    cycle,
                ))
            })
            .collect();
        if dead_at.len() == cycles as usize {
            continue; // never-allocated word
        }
        for cycle in dead_at {
            let site = FaultSite::new(Structure::VectorRegisterFile, 0, word, 1, cycle);
            // The gate: the stuck-at twin of a dead transient site must
            // never be prunable.
            assert!(
                !oracle.is_dead(site.with_kind(FaultKind::StuckAt1)),
                "oracle pruned a stuck-at site at word {word} cycle {cycle}"
            );
            dead_sites.push(site);
        }
    }
    assert!(!dead_sites.is_empty(), "probe kernel has dead RF windows");

    // Ground truth: replay the stuck-at-1 twin of each dead site. If
    // the oracle's verdict were applied to stuck-at campaigns, all of
    // these would be pre-classified masked without replay — but at
    // least one (a pre-write window of the stored register) is a real
    // SDC.
    let stuck_twins: Vec<FaultSite> = dead_sites
        .iter()
        .map(|s| s.with_kind(FaultKind::StuckAt1))
        .collect();
    let golden = golden_run(&arch, &probe).unwrap();
    let outcomes = run_injections(
        &arch,
        &probe,
        &golden,
        &stuck_twins,
        cfg(stuck_twins.len() as u32, false, false),
    )
    .unwrap();
    assert!(
        outcomes.iter().any(|o| *o != Outcome::Masked),
        "every stuck-at twin of an oracle-dead site replayed masked — \
         pruning stuck-at campaigns would be sound, gate test is vacuous: {outcomes:?}"
    );
}
