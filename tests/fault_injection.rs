//! End-to-end fault-injection behaviour across crates: outcome
//! classification, determinism, and the physical meaning of fault sites.

use gpu_reliability_repro::archs::{geforce_gtx_480, hd_radeon_7970, quadro_fx_5600};
use gpu_reliability_repro::reliability::campaign::{
    golden_run, run_campaign, run_injections, sample_sites, CampaignConfig, Outcome,
};
use gpu_reliability_repro::sim::{FaultSite, Gpu, NoopObserver, Structure};
use gpu_reliability_repro::workloads::{Histogram, Kmeans, Transpose, VectorAdd, Workload};

fn cfg(n: u32, threads: usize) -> CampaignConfig {
    CampaignConfig {
        injections: n,
        threads,
        ..CampaignConfig::quick(42)
    }
}

#[test]
fn campaign_outcomes_are_seed_deterministic_and_thread_invariant() {
    let arch = quadro_fx_5600();
    let w = Transpose::new(32, 9);
    let r1 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg(24, 1)).unwrap();
    let r4 = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg(24, 4)).unwrap();
    assert_eq!(r1.tally, r4.tally);
    let r_other_seed = run_campaign(
        &arch,
        &w,
        Structure::VectorRegisterFile,
        CampaignConfig {
            seed: 43,
            ..cfg(24, 4)
        },
    )
    .unwrap();
    // Same totals, potentially different split.
    assert_eq!(r_other_seed.tally.total(), 24);
}

#[test]
fn flip_in_never_allocated_space_is_always_masked() {
    // The GTX 480 register file is far larger than one tiny block uses;
    // the top words are never allocated, so flips there must be masked.
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(128, 3);
    let golden = golden_run(&arch, &w).unwrap();
    let sites: Vec<FaultSite> = (0..8)
        .map(|i| {
            FaultSite::new(
                Structure::VectorRegisterFile,
                14,
                arch.rf_words_per_sm() - 1 - i,
                (i % 32) as u8,
                golden.cycles / 2,
            )
        })
        .collect();
    let outcomes = run_injections(&arch, &w, &golden, &sites, cfg(8, 2)).unwrap();
    assert!(
        outcomes.iter().all(|o| *o == Outcome::Masked),
        "unallocated space must be invulnerable: {outcomes:?}"
    );
}

#[test]
fn flip_after_execution_finishes_is_masked() {
    let arch = quadro_fx_5600();
    let w = VectorAdd::new(256, 3);
    let golden = golden_run(&arch, &w).unwrap();
    let site = FaultSite::new(
        Structure::VectorRegisterFile,
        0,
        0,
        0,
        golden.cycles.saturating_sub(1),
    );
    let outcomes = run_injections(&arch, &w, &golden, &[site], cfg(1, 1)).unwrap();
    // The very last cycles are drain; a flip in the RF there is almost
    // always dead. (Not a tautology: the site targets word 0, which IS
    // used early in the launch.)
    assert_eq!(outcomes[0], Outcome::Masked);
}

#[test]
fn histogram_index_corruption_can_raise_due() {
    // Histogram computes a shared-memory address from loaded data; a
    // campaign over its register file should provoke at least one
    // non-masked outcome with a decent sample.
    let arch = quadro_fx_5600();
    let w = Histogram::new(1024, 64, 5);
    let r = run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg(150, 8)).unwrap();
    assert!(
        r.tally.failures() > 0,
        "150 injections into a busy RF produced no failure at all: {:?}",
        r.tally
    );
}

#[test]
fn scalar_register_file_campaign_runs_on_si_only() {
    let si = hd_radeon_7970();
    let w = Kmeans::new(256, 4, 1, 5);
    let r = run_campaign(&si, &w, Structure::ScalarRegisterFile, cfg(12, 2)).unwrap();
    assert_eq!(r.tally.total(), 12);
}

#[test]
fn sample_sites_cover_the_structure() {
    let arch = geforce_gtx_480();
    let sites = sample_sites(&arch, Structure::LocalMemory, 10_000, 500, 1);
    assert!(
        sites.iter().any(|s| s.sm >= arch.num_sms / 2),
        "high SMs sampled"
    );
    assert!(
        sites.iter().any(|s| s.sm < arch.num_sms / 2),
        "low SMs sampled"
    );
    assert!(sites.iter().any(|s| s.bit >= 16) && sites.iter().any(|s| s.bit < 16));
    let max_word = arch.lds_words_per_sm();
    assert!(sites.iter().all(|s| s.word < max_word));
}

#[test]
fn armed_fault_survives_only_one_run() {
    // A Gpu consumes its armed fault at the injection cycle; a second
    // launch must be clean.
    let arch = quadro_fx_5600();
    let w = VectorAdd::new(256, 3);
    let golden = golden_run(&arch, &w).unwrap();
    let mut gpu = Gpu::new(arch.clone());
    gpu.arm_fault(FaultSite::new(Structure::VectorRegisterFile, 0, 10, 5, 10));
    let _ = w.run(&mut gpu, &mut NoopObserver).unwrap();
    // Fresh GPU, no fault: golden.
    let mut gpu2 = Gpu::new(arch);
    let out2 = w.run(&mut gpu2, &mut NoopObserver).unwrap();
    assert_eq!(out2, golden.outputs);
}
