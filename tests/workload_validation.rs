//! Cross-crate validation: every benchmark, on every device, produces
//! output bit-identical to its host golden reference — the property the
//! whole fault-injection methodology rests on.

use gpu_reliability_repro::archs::all_devices;
use gpu_reliability_repro::sim::{Gpu, NoopObserver};
use gpu_reliability_repro::workloads::*;

fn smoke_workloads(seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Backprop::new(64, seed)),
        Box::new(DwtHaar1D::new(256, seed)),
        Box::new(Gaussian::new(12, seed)),
        Box::new(Histogram::new(1024, 64, seed)),
        Box::new(Kmeans::new(256, 4, 2, seed)),
        Box::new(MatrixMul::new(32, seed)),
        Box::new(Reduction::new(1024, 256, seed)),
        Box::new(Scan::new(1024, 256, seed)),
        Box::new(Transpose::new(32, seed)),
        Box::new(VectorAdd::new(1024, seed)),
    ]
}

#[test]
fn every_workload_is_bit_exact_on_every_device() {
    for w in smoke_workloads(11) {
        let golden = w.reference();
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            let out = w
                .run(&mut gpu, &mut NoopObserver)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), arch.name));
            assert_eq!(out, golden, "{} differs on {}", w.name(), arch.name);
        }
    }
}

#[test]
fn different_seeds_produce_different_outputs() {
    for (a, b) in smoke_workloads(1).into_iter().zip(smoke_workloads(2)) {
        assert_eq!(a.name(), b.name());
        assert_ne!(
            a.reference(),
            b.reference(),
            "{} ignores its input seed",
            a.name()
        );
    }
}

#[test]
fn timing_is_deterministic_per_device() {
    for w in smoke_workloads(3) {
        for arch in all_devices().into_iter().take(2) {
            let mut g1 = Gpu::new(arch.clone());
            let mut g2 = Gpu::new(arch.clone());
            w.run(&mut g1, &mut NoopObserver).unwrap();
            w.run(&mut g2, &mut NoopObserver).unwrap();
            assert_eq!(
                g1.app_cycle(),
                g2.app_cycle(),
                "{} timing varies on {}",
                w.name(),
                arch.name
            );
        }
    }
}

#[test]
fn devices_disagree_on_timing() {
    // Different microarchitectures must produce different cycle counts —
    // otherwise the EPF comparison is vacuous.
    let w = MatrixMul::new(32, 5);
    let mut cycles = Vec::new();
    for arch in all_devices() {
        let mut gpu = Gpu::new(arch);
        w.run(&mut gpu, &mut NoopObserver).unwrap();
        cycles.push(gpu.app_cycle());
    }
    cycles.dedup();
    assert!(cycles.len() >= 3, "suspiciously uniform timing: {cycles:?}");
}
